"""The shared finding/waiver/baseline vocabulary of the ``repro lint`` pass.

Every checker (:mod:`repro.analysis.checkers`) reports :class:`Finding`
objects — file:line anchored, tagged with the checker id — and every finding
can be suppressed two ways:

* **inline waivers**: a ``# repro-lint: waive[RA001] reason`` comment on the
  offending line (or alone on the line above it) waives the named checkers
  there, *with a mandatory justification* — a waiver without a reason is
  itself a finding (``RA000``);
* **a committed baseline**: ``lint-baseline.json`` pins a set of known
  findings by (checker, path, symbol, message) — deliberately *not* by line
  number, so unrelated edits above a baselined finding do not churn the file.

Suppressed findings are still collected and reported (``--format json``
carries them), they just stop failing the run.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "Waiver",
    "apply_suppressions",
    "load_baseline",
    "save_baseline",
    "scan_waivers",
]

#: The waiver grammar (one or several comma-separated checker ids; see the
#: module docstring for the spelled-out form).
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*waive\[\s*([A-Za-z0-9_,\s]+?)\s*\]\s*(.*?)\s*$"
)
#: Anything that *looks* like it wants to be a lint pragma gets validated, so
#: a typo in the verb fails loudly instead of silently suppressing nothing.
_PRAGMA_RE = re.compile(r"#\s*repro-lint\b")
_CHECKER_ID_RE = re.compile(r"^RA\d{3}$")


def _comment_tokens(text: str) -> list[tuple[int, str, bool]]:
    """Real ``#`` comments as ``(line, comment_text, standalone)`` triples.

    Tokenizing (rather than scanning raw lines) keeps pragma-shaped text in
    docstrings and string literals — e.g. this very module documenting the
    syntax — from being parsed as waivers.  Falls back to nothing on
    tokenize errors; the AST parse will have failed loudly first anyway.
    """
    out: list[tuple[int, str, bool]] = []
    lines = text.splitlines()
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            source_line = lines[line - 1] if line <= len(lines) else ""
            standalone = source_line.strip().startswith("#")
            out.append((line, token.string, standalone))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse failed first
        pass
    return out


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, anchored to ``path:line`` and a checker id."""

    path: str
    line: int
    checker: str
    message: str
    #: The enclosing function/class qualname when the checker knows it; part
    #: of the baseline identity, so findings survive line drift.
    symbol: str = ""

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Baseline identity: everything except the (drifting) line number."""
        return (self.checker, self.path, self.symbol, self.message)

    def render(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.checker}{sym} {self.message}"

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# repro-lint: waive[...]`` comment."""

    path: str
    line: int
    checkers: tuple[str, ...]
    reason: str
    #: The source lines this waiver suppresses (the comment's own line, plus
    #: the next line when the comment stands alone).
    applies_to: tuple[int, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "checkers": list(self.checkers),
            "reason": self.reason,
        }


def scan_waivers(path: str, text: str) -> tuple[list[Waiver], list[Finding]]:
    """Parse every waiver comment in ``text``; malformed ones become findings.

    A waiver on a code line applies to that line; a waiver alone on its line
    applies to the line below it (the conventional "decorate the statement"
    placement).  Returns ``(waivers, malformed_findings)`` — the latter carry
    the pseudo-checker id ``RA000`` so a broken waiver cannot pass silently.
    """
    waivers: list[Waiver] = []
    malformed: list[Finding] = []
    for lineno, comment, standalone in _comment_tokens(text):
        if not _PRAGMA_RE.search(comment):
            continue
        match = _WAIVER_RE.search(comment)
        if not match:
            malformed.append(
                Finding(
                    path=path,
                    line=lineno,
                    checker="RA000",
                    message=(
                        "malformed repro-lint pragma; expected "
                        "'# repro-lint: waive[RA001] reason'"
                    ),
                )
            )
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        reason = match.group(2).strip()
        bad_ids = [cid for cid in ids if not _CHECKER_ID_RE.match(cid)]
        if not ids or bad_ids:
            malformed.append(
                Finding(
                    path=path,
                    line=lineno,
                    checker="RA000",
                    message=f"waiver names invalid checker id(s) {bad_ids or ['<none>']}",
                )
            )
            continue
        if not reason:
            malformed.append(
                Finding(
                    path=path,
                    line=lineno,
                    checker="RA000",
                    message=(
                        f"waiver for {', '.join(ids)} has no justification; "
                        "every waiver must say why"
                    ),
                )
            )
            continue
        applies = (lineno, lineno + 1) if standalone else (lineno,)
        waivers.append(
            Waiver(
                path=path, line=lineno, checkers=ids, reason=reason, applies_to=applies
            )
        )
    return waivers, malformed


def apply_suppressions(
    findings: list[Finding],
    waivers: list[Waiver],
    baseline: set[tuple[str, str, str, str]],
) -> tuple[list[Finding], list[tuple[Finding, Waiver]], list[Finding]]:
    """Split findings into (active, waived, baselined) — in that precedence."""
    by_site: dict[tuple[str, int], list[Waiver]] = {}
    for waiver in waivers:
        for line in waiver.applies_to:
            by_site.setdefault((waiver.path, line), []).append(waiver)
    active: list[Finding] = []
    waived: list[tuple[Finding, Waiver]] = []
    baselined: list[Finding] = []
    for finding in findings:
        waiver = next(
            (
                w
                for w in by_site.get((finding.path, finding.line), ())
                if finding.checker in w.checkers
            ),
            None,
        )
        if waiver is not None:
            waived.append((finding, waiver))
        elif finding.key in baseline:
            baselined.append(finding)
        else:
            active.append(finding)
    return active, waived, baselined


def load_baseline(path: Path) -> set[tuple[str, str, str, str]]:
    """Read a baseline file into a set of finding keys (empty if absent)."""
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    return {
        (
            entry["checker"],
            entry["path"],
            entry.get("symbol", ""),
            entry["message"],
        )
        for entry in payload.get("findings", ())
    }


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the line-independent identities of ``findings`` as the baseline."""
    entries = sorted(
        {f.key for f in findings}
    )  # set first: identical keys collapse to one entry
    payload = {
        "version": 1,
        "comment": (
            "Known repro-lint findings, pinned by (checker, path, symbol, "
            "message). Regenerate with: repro lint --write-baseline"
        ),
        "findings": [
            {"checker": c, "path": p, "symbol": s, "message": m}
            for c, p, s, m in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
