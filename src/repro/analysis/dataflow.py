"""Forward dataflow over function ASTs, on top of the project call graph.

:class:`~repro.analysis.callgraph.ProjectGraph` answers *who calls whom*;
this module answers *where a value goes*.  :class:`FunctionWalker` runs a
forward may-analysis over one function body: an environment maps **roots**
(dotted Name/Attribute chains, the RA003 convention — ``payload``,
``self._lock``) to sets of :class:`Label` facts, and the walker pushes those
facts through

* assignments, ``+=``, and tuple/starred unpacking (element-wise when the
  right-hand side is a literal tuple of matching arity);
* attribute and subscript stores, which *weakly* update the chain root —
  ``headers[name] = value`` taints ``headers``, it does not replace it;
* every expression form that merely moves values around (f-strings,
  comprehensions, conditionals, boolean operators, container displays);
* branches, which fork the environment and merge pointwise (union) so a
  fact established on either arm of an ``if`` survives it;
* loops, by running the body text twice — enough for the loop-carried
  flows this codebase contains (a value poisoned late in iteration *n*
  reaching a use early in iteration *n+1*).

What a *call* does to values is the checker's business, not the walker's:
a :class:`Domain` subclass decides whether ``int(x)`` launders a fact,
``asyncio.create_task(...)`` mints one, or ``open(path)`` is a sink.  The
walker hands the domain every call (with receiver and argument values
already evaluated), every ``with`` item, every ``await``, every store, and
every ``return``/``yield`` — and :func:`bind_arguments` maps a call's
arguments onto a resolved callee's parameters so a domain can run a
**one-level call summary**: re-walk the callee with the caller's facts
seeded into its parameters, through the same ``ProjectGraph`` edges the
reachability checkers use.

Nested ``def``s and lambdas are separate scopes and are skipped, exactly
like :func:`~repro.analysis.callgraph._own_statements` skips them when
collecting call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import FunctionInfo, ProjectGraph, dotted_name

__all__ = [
    "EMPTY",
    "Domain",
    "FunctionWalker",
    "Label",
    "bind_arguments",
]

#: The empty value set: the default for every root the analysis never wrote.
EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class Label:
    """One fact attached to a value as it flows (hashable, so sets merge)."""

    kind: str  #: domain-defined, e.g. ``"taint:size"`` or ``"task"``
    origin: str  #: human phrasing of where the fact was born
    line: int  #: source line of the origin, for findings


class Domain:
    """Checker-specific semantics; the base class is pure propagation."""

    def seed_params(
        self, fqn: str, info: FunctionInfo
    ) -> dict[str, frozenset[Label]]:
        """Initial facts for parameter roots (e.g. taint a ``payload`` arg)."""
        return {}

    def call(
        self,
        walker: "FunctionWalker",
        node: ast.Call,
        raw: str | None,
        recv: frozenset[Label],
        args: list[tuple[ast.AST, frozenset[Label]]],
        kwargs: dict[str, frozenset[Label]],
    ) -> frozenset[Label]:
        """Value of a call expression.  Default: calls propagate — the
        result carries whatever the receiver and arguments carried."""
        out = recv
        for _, values in args:
            out = out | values
        for values in kwargs.values():
            out = out | values
        return out

    def store(
        self,
        walker: "FunctionWalker",
        root: str,
        values: frozenset[Label],
        node: ast.AST,
        target: str,
    ) -> None:
        """A write to ``root`` (``target`` is name/attribute/subscript)."""

    def with_item(
        self, walker: "FunctionWalker", node: ast.withitem,
        values: frozenset[Label],
    ) -> frozenset[Label]:
        """Facts bound by ``with expr as x``; default binds the expr's."""
        return values

    def await_value(
        self, walker: "FunctionWalker", node: ast.Await,
        values: frozenset[Label],
    ) -> frozenset[Label]:
        return values

    def binop(
        self, walker: "FunctionWalker", node: ast.BinOp,
        left: frozenset[Label], right: frozenset[Label],
    ) -> frozenset[Label]:
        return left | right

    def returned(
        self, walker: "FunctionWalker", node: ast.AST,
        values: frozenset[Label],
    ) -> None:
        """A ``return``/``yield`` shipped these facts out of the scope."""


def bind_arguments(
    info: FunctionInfo,
    call: ast.Call,
    args: list[tuple[ast.AST, frozenset[Label]]],
    kwargs: dict[str, frozenset[Label]],
) -> dict[str, frozenset[Label]]:
    """Map a call's argument values onto a callee's parameter names.

    Positional arguments skip an initial ``self``/``cls`` parameter (the
    receiver is not an argument at the call site); ``*args``/``**kwargs``
    spill is ignored — a summary only needs the named flows.
    """
    params = [a.arg for a in info.node.args.posonlyargs + info.node.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    bound: dict[str, frozenset[Label]] = {}
    for param, (_, values) in zip(params, args):
        if values:
            bound[param] = values
    kwonly = {a.arg for a in info.node.args.kwonlyargs}
    for name, values in kwargs.items():
        if values and (name in kwonly or name in params):
            bound[name] = values
    return bound


class FunctionWalker:
    """One forward pass (run twice) over one function's own statements."""

    def __init__(
        self,
        graph: ProjectGraph,
        fqn: str,
        domain: Domain,
        *,
        seed: dict[str, frozenset[Label]] | None = None,
        passes: int = 2,
    ):
        self.graph = graph
        self.fqn = fqn
        self.info: FunctionInfo = graph.functions[fqn]
        self.domain = domain
        self.env: dict[str, frozenset[Label]] = {}
        self._passes = passes
        #: call node -> resolved callee fqn, from the project graph's pass
        self._callees: dict[int, str | None] = {
            id(site.node): callee for site, callee in graph.calls.get(fqn, ())
        }
        self._seed = dict(seed or {})

    # -- driving ---------------------------------------------------------
    def run(self) -> dict[str, frozenset[Label]]:
        self.env = dict(self._seed)
        for name, values in self.domain.seed_params(self.fqn, self.info).items():
            self.env[name] = self.env.get(name, EMPTY) | values
        for _ in range(self._passes):
            for stmt in self.info.node.body:
                self._stmt(stmt)
        return self.env

    def resolved_callee(self, node: ast.Call) -> str | None:
        return self._callees.get(id(node))

    # -- environment ------------------------------------------------------
    def lookup(self, root: str) -> frozenset[Label]:
        """Facts on a dotted root, including those on any chain prefix:
        ``job.payload`` carries whatever ``job`` carries."""
        out = self.env.get(root, EMPTY)
        while "." in root:
            root = root.rsplit(".", 1)[0]
            out = out | self.env.get(root, EMPTY)
        return out

    def _bind(self, target: ast.AST, values: frozenset[Label], node: ast.AST):
        if isinstance(target, ast.Name):
            self.env[target.id] = values  # strong update: straight-line kills
            self.domain.store(self, target.id, values, node, "name")
        elif isinstance(target, ast.Attribute):
            root = dotted_name(target)
            if root is not None:
                self.env[root] = self.env.get(root, EMPTY) | values
                self.domain.store(self, root, values, node, "attribute")
        elif isinstance(target, ast.Subscript):
            root = dotted_name(target.value)
            if root is not None:
                self.env[root] = self.env.get(root, EMPTY) | values
                self.domain.store(self, root, values, node, "subscript")
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = None
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and isinstance(
                getattr(node, "value", None), (ast.Tuple, ast.List)
            ):
                source = node.value.elts
                if len(source) == len(target.elts) and not any(
                    isinstance(t, ast.Starred) for t in target.elts
                ):
                    parts = [self.eval(elt) for elt in source]
            for index, elt in enumerate(target.elts):
                self._bind(elt, values if parts is None else parts[index], node)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, values, node)

    # -- statements -------------------------------------------------------
    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: its flows are its own
        if isinstance(node, ast.Assign):
            values = self.eval(node.value)
            for target in node.targets:
                self._bind(target, values, node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self.eval(node.value), node)
        elif isinstance(node, ast.AugAssign):
            values = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                values = values | self.env.get(node.target.id, EMPTY)
            self._bind(node.target, values, node)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.domain.returned(self, node, self.eval(node.value))
        elif isinstance(node, (ast.If,)):
            self.eval(node.test)
            self._branch([node.body, node.orelse])
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # body twice: a fact born late in iteration n reaches a use
            # early in iteration n+1 on the second sweep
            self._bind(node.target, self.eval(node.iter), node)
            for _ in range(2):
                for stmt in node.body:
                    self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            for _ in range(2):
                for stmt in node.body:
                    self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                values = self.domain.with_item(
                    self, item, self.eval(item.context_expr)
                )
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, values, node)
            for stmt in node.body:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            # may-analysis: every block contributes to one environment, so
            # facts from body, handlers, else, and finally all survive
            for stmt in node.body:
                self._stmt(stmt)
            for handler in node.handlers:
                if handler.name:
                    self.env[handler.name] = EMPTY
                for stmt in handler.body:
                    self._stmt(stmt)
            for stmt in node.orelse:
                self._stmt(stmt)
            for stmt in node.finalbody:
                self._stmt(stmt)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.eval(node.exc)
        elif isinstance(node, ast.Assert):
            self.eval(node.test)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = dotted_name(target)
                if root is not None:
                    self.env.pop(root, None)
        # Pass/Break/Continue/Import/Global/Nonlocal: no value flow

    def _branch(self, arms: list[list[ast.stmt]]) -> None:
        before = dict(self.env)
        merged: dict[str, frozenset[Label]] = {}
        for arm in arms:
            self.env = dict(before)
            for stmt in arm:
                self._stmt(stmt)
            for root, values in self.env.items():
                merged[root] = merged.get(root, EMPTY) | values
        self.env = merged

    # -- expressions ------------------------------------------------------
    def eval(self, node: ast.AST | None) -> frozenset[Label]:
        if node is None or isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, (ast.Name, ast.Attribute)):
            root = dotted_name(node)
            return self.lookup(root) if root is not None else EMPTY
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            return base
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Await):
            return self.domain.await_value(self, node, self.eval(node.value))
        if isinstance(node, ast.BinOp):
            return self.domain.binop(
                self, node, self.eval(node.left), self.eval(node.right)
            )
        if isinstance(node, (ast.BoolOp,)):
            out = EMPTY
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comp in node.comparators:
                out = out | self.eval(comp)
            return EMPTY if out is EMPTY else out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out = out | self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self.eval(key)
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, (ast.JoinedStr,)):
            out = EMPTY
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                self._bind(gen.target, self.eval(gen.iter), node)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                return self.eval(node.key) | self.eval(node.value)
            return self.eval(node.elt)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            values = self.eval(node.value)
            self._bind(node.target, values, node)
            return values
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.domain.returned(self, node, self.eval(node.value))
            return EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY  # separate scope, like nested defs
        if isinstance(node, ast.Slice):
            self.eval(node.lower)
            self.eval(node.upper)
            self.eval(node.step)
            return EMPTY
        return EMPTY

    def _call(self, node: ast.Call) -> frozenset[Label]:
        raw = dotted_name(node.func)
        recv = EMPTY
        if isinstance(node.func, ast.Attribute):
            recv = self.eval(node.func.value)
        elif not isinstance(node.func, ast.Name):
            self.eval(node.func)
        args = [(arg, self.eval(arg)) for arg in node.args]
        kwargs = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:  # **spread: evaluated, unnamed
            if kw.arg is None:
                self.eval(kw.value)
        return self.domain.call(self, node, raw, recv, args, kwargs)
