"""RA002: the ``/v1`` wire contract must agree three ways.

The HTTP surface is hand-maintained in three places: the ``_route`` dispatch
in ``repro/service/server.py``, the paths issued by ``RemoteSession`` /
``AsyncRemoteSession`` in ``repro/service/client.py``, and the endpoint
table in ``docs/service-api.md``.  Drift between them has historically
surfaced as a runtime 404 or a silently-ignored query parameter; this
checker makes it a lint failure instead.

Extraction is structural, not textual, on the Python side:

* **server** — every ``route == ("METHOD", "/v1/...")`` comparison inside
  ``_route``, plus the parametrized branches built from ``method`` equality
  / membership tests combined with ``path.startswith(...)`` /
  ``path.endswith(...)`` (synthesized as ``/v1/jobs/<id>``,
  ``/v1/jobs/<id>/rows``).  Query parameters are every ``params.get("x")``.
* **clients** — every call through the transport helpers (``_call``,
  ``_stream``, ``_open``, ``_roundtrip``, ``call``) whose path is a string
  literal, an f-string (``{...}`` placeholders normalize to ``<id>``), or a
  local variable assembled from those with ``=`` / ``+=``.  Query strings
  split off the path and contribute parameter names.
* **docs** — every ``` `METHOD /v1/...` ``` mention (the endpoint index and
  the per-endpoint headings), plus every ``?param=`` / ``&param=`` mention.

The three route sets must be equal, and the server's query-parameter set
must match the clients' and be documented.  Every disagreement is anchored
to the side that has to change: an undocumented route points at
``server.py``, a documented-but-unimplemented one at the docs line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.callgraph import dotted_name
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = [
    "WireContract",
    "WireContractChecker",
    "docs_contract",
    "extract_client_contract",
    "extract_server_contract",
]

#: Transport helpers whose calls carry ``(method, path)``; value is the
#: positional index of ``(method, path)`` — ``_stream`` is path-first with
#: the method in a keyword.
_TRANSPORT_HELPERS = {"_call", "_open", "_roundtrip", "call"}

_DOC_ROUTE_RE = re.compile(r"`(GET|POST|DELETE|PUT|PATCH)\s+(/v1[^`\s]*)")
_DOC_PARAM_RE = re.compile(r"[?&]([A-Za-z_][A-Za-z0-9_]*)=")


@dataclass
class WireContract:
    """One side's view of the wire surface: routes + query parameters."""

    label: str
    #: (METHOD, normalized path) -> first (file, line) seen
    routes: dict[tuple[str, str], tuple[str, int]] = field(default_factory=dict)
    #: query parameter name -> first (file, line) seen
    params: dict[str, tuple[str, int]] = field(default_factory=dict)

    def add_route(self, method: str, path: str, origin: tuple[str, int]) -> None:
        path, _, query = path.partition("?")
        for name in _DOC_PARAM_RE.findall(f"?{query}" if query else ""):
            self.params.setdefault(name, origin)
        if path.startswith("/v1"):
            self.routes.setdefault((method, path), origin)

    def add_param(self, name: str, origin: tuple[str, int]) -> None:
        self.params.setdefault(name, origin)


# -- server side -------------------------------------------------------


def _route_function(tree: ast.Module) -> ast.AsyncFunctionDef | ast.FunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "_route":
                return node
    return None


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _branch_routes(test: ast.expr) -> list[tuple[str, str, int]]:
    """Routes asserted by one ``if``/``elif`` condition inside ``_route``."""
    out: list[tuple[str, str, int]] = []
    # direct: route == ("GET", "/v1/...")
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        left, op, right = node.left, node.ops[0], node.comparators[0]
        if (
            isinstance(op, ast.Eq)
            and isinstance(left, ast.Name)
            and left.id == "route"
            and isinstance(right, ast.Tuple)
            and len(right.elts) == 2
        ):
            method, path = (_const_str(e) for e in right.elts)
            if method and path:
                out.append((method, path, node.lineno))
    if out:
        return out
    # parametrized: method tests + path.startswith/endswith tests ANDed
    methods: list[str] = []
    prefix = suffix = None
    lineno = test.lineno
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            if isinstance(left, ast.Name) and left.id == "method":
                if isinstance(op, ast.Eq) and _const_str(right):
                    methods.append(_const_str(right))
                elif isinstance(op, ast.In) and isinstance(right, (ast.Tuple, ast.List)):
                    methods.extend(m for m in map(_const_str, right.elts) if m)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "path.startswith" and node.args:
                prefix = _const_str(node.args[0])
            elif name == "path.endswith" and node.args:
                suffix = _const_str(node.args[0])
    if methods and prefix:
        path = prefix + "<id>" + (suffix or "")
        out.extend((method, path, lineno) for method in methods)
    return out


def extract_server_contract(source: SourceFile) -> WireContract:
    contract = WireContract(label="server")
    fn = _route_function(source.tree)
    if fn is not None:
        stack: list[ast.stmt] = list(fn.body)
        while stack:
            stmt = stack.pop(0)
            if isinstance(stmt, ast.If):
                for method, path, lineno in _branch_routes(stmt.test):
                    contract.add_route(method, path, (source.rel, lineno))
                stack.extend(stmt.orelse)
                stack.extend(stmt.body)
    # query parameters: every params.get("x") anywhere in the module
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and dotted_name(node.func) == "params.get":
            if node.args:
                name = _const_str(node.args[0])
                if name:
                    contract.add_param(name, (source.rel, node.lineno))
    return contract


# -- client side -------------------------------------------------------


def _literal_path(node: ast.AST, local_strings: dict[str, str]) -> str | None:
    """A path expression as a string, ``<id>`` standing in for placeholders."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("<id>")
        return "".join(parts)
    if isinstance(node, ast.Name):
        return local_strings.get(node.id)
    return None


def _local_strings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Locals assembled from string pieces, ``+=`` concatenating — resolves
    the ``path = f"..."; path += f"?since=..."`` idiom to one string."""
    out: dict[str, str] = {}

    def scan(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    value = _literal_path(stmt.value, out)
                    if value is not None:
                        out[target.id] = value
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
                if isinstance(stmt.target, ast.Name) and stmt.target.id in out:
                    piece = _literal_path(stmt.value, out)
                    if piece is not None:
                        out[stmt.target.id] += piece
        # nested blocks (if/try/loops) in lexical order
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for block in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, block, None)
                if inner:
                    scan(inner)
            for handler in getattr(stmt, "handlers", ()):
                scan(handler.body)

    scan(fn.body)
    return out


def extract_client_contract(source: SourceFile) -> WireContract:
    contract = WireContract(label="client")
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_strings = _local_strings(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name is None or "." not in name:
                continue
            helper = name.rsplit(".", 1)[-1]
            method = path_expr = None
            if helper in _TRANSPORT_HELPERS and len(sub.args) >= 2:
                method = _const_str(sub.args[0])
                path_expr = sub.args[1]
            elif helper == "_stream" and sub.args:
                method = next(
                    (
                        _const_str(kw.value)
                        for kw in sub.keywords
                        if kw.arg == "method"
                    ),
                    "POST",
                )
                path_expr = sub.args[0]
            if method is None or path_expr is None:
                continue
            path = _literal_path(path_expr, local_strings)
            if path is not None:
                contract.add_route(method, path, (source.rel, sub.lineno))
    return contract


# -- docs side ---------------------------------------------------------


def docs_contract(rel: str, text: str) -> WireContract:
    contract = WireContract(label="docs")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _DOC_ROUTE_RE.finditer(line):
            contract.add_route(match.group(1), match.group(2), (rel, lineno))
        for match in _DOC_PARAM_RE.finditer(line):
            contract.add_param(match.group(1), (rel, lineno))
    return contract


# -- the three-way comparison -----------------------------------------


def compare_contracts(
    server: WireContract,
    client: WireContract,
    docs: WireContract | None,
) -> list[Finding]:
    findings: list[Finding] = []

    def mismatch(origin: tuple[str, int], message: str) -> None:
        findings.append(
            Finding(
                path=origin[0],
                line=origin[1],
                checker="RA002",
                symbol="wire-contract",
                message=message,
            )
        )

    def fmt(route: tuple[str, str]) -> str:
        return f"{route[0]} {route[1]}"

    server_anchor = next(iter(server.routes.values()), ("server", 1))
    for route, origin in sorted(client.routes.items()):
        if route not in server.routes:
            mismatch(origin, f"client issues {fmt(route)} but the server has no such route")
    for route, origin in sorted(server.routes.items()):
        if route not in client.routes:
            mismatch(
                origin,
                f"server route {fmt(route)} is not exercised by any client "
                "(RemoteSession/AsyncRemoteSession)",
            )
    if docs is not None:
        for route, origin in sorted(server.routes.items()):
            if route not in docs.routes:
                mismatch(
                    origin,
                    f"server route {fmt(route)} is undocumented in docs/service-api.md",
                )
        for route, origin in sorted(docs.routes.items()):
            if route not in server.routes:
                mismatch(
                    origin,
                    f"documented route {fmt(route)} has no server implementation",
                )
    for name, origin in sorted(server.params.items()):
        if name not in client.params:
            mismatch(
                origin,
                f"server reads query param {name!r} but no client ever sends it",
            )
        if docs is not None and name not in docs.params:
            mismatch(
                origin,
                f"server query param {name!r} is undocumented in docs/service-api.md",
            )
    for name, origin in sorted(client.params.items()):
        if name not in server.params:
            mismatch(
                origin,
                f"client sends query param {name!r} the server never reads",
            )
    if not server.routes:
        mismatch(
            server_anchor,
            "no routes extracted from server._route — extraction is broken "
            "or the dispatch moved; update the RA002 extractor",
        )
    return findings


class WireContractChecker(Checker):
    id = "RA002"
    title = "server/client/docs wire-contract agreement"

    #: Path suffixes locating the two Python sides in the fileset.
    server_suffix = "service/server.py"
    client_suffix = "service/client.py"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        server_src = next(
            (s for s in sources if s.rel.endswith(self.server_suffix)), None
        )
        client_src = next(
            (s for s in sources if s.rel.endswith(self.client_suffix)), None
        )
        if server_src is None or client_src is None:
            # not linting the service layer (e.g. a fixtures-only run)
            context.note("ra002_routes", 0)
            return []
        server = extract_server_contract(server_src)
        client = extract_client_contract(client_src)
        docs = None
        if context.docs_text is not None:
            rel = context.docs_path.as_posix() if context.docs_path else "docs"
            docs = docs_contract(rel, context.docs_text)
        context.note("ra002_routes", len(server.routes))
        context.note("ra002_client_routes", len(client.routes))
        context.note("ra002_docs_routes", len(docs.routes) if docs else None)
        context.note("ra002_params", sorted(server.params))
        return compare_contracts(server, client, docs)
