"""RA009: acquired resources must be released on every path out of scope.

Tasks, executors, sockets, files, server handles, and service threads all
carry an acquire/release contract, and a path that exits the owning
function without honouring it strands the resource: an uncancelled
``create_task`` keeps running after its owner is gone, an unshut
``ProcessPoolExecutor`` leaks worker processes, an unclosed writer holds a
connection until the GC gets around to it.

The checker runs the dataflow engine over every function and tracks each
acquisition as a label flowing through the bindings.  A label is
**discharged** by any of the release idioms this codebase actually uses:

* ``with`` / ``async with`` on the acquisition (release by construction);
* a release method on any binding that carries the label — ``cancel``,
  ``close``, ``shutdown``, ``join``, ``stop``, ``wait_closed``,
  ``kill``/``terminate``/``wait``/``communicate`` — anywhere in the
  function, *including* inside ``finally`` blocks and exception handlers
  (the walker folds every block into one environment), and including the
  coordinator's lane-teardown shape: append each task into a list, then
  ``for task in tasks: task.cancel()`` — container stores keep the label
  on the list root, so the loop variable inherits and discharges it;
* ``await`` on a stored task (awaiting *is* joining);
* **ownership transfer**: returning or yielding the resource, storing it
  on an attribute (``self._runner = asyncio.create_task(...)`` hands it to
  the object's lifecycle), or passing it to a call
  (``asyncio.gather(*workers, folder)``, a callback registry, an
  ``ExitStack``) — the callee owns it now.

This is deliberately a *may*-release analysis: one discharge site anywhere
in the function counts, which keeps the sanctioned teardown idioms (cancel
after ``await state.done.wait()``, not under ``finally``) clean while
still catching the real failure — a resource with **no** discharge at all,
the thing deleting a lane's cancel-on-exit produces.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ProjectGraph, dotted_name, strip_self
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.dataflow import EMPTY, Domain, FunctionWalker, Label
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["ResourceLifecycleChecker"]

#: acquisition tails -> resource kind (matched on the stripped dotted tail).
ACQUIRERS: dict[str, str] = {
    "create_task": "task",
    "ensure_future": "task",
    "ProcessPoolExecutor": "process pool",
    "ThreadPoolExecutor": "thread pool",
    "open": "file",
    "open_connection": "connection",
    "start_server": "server",
    "Popen": "subprocess",
    "ServiceThread": "service thread",
    "Thread": "thread",
    "socket": "socket",
    "create_connection": "socket",
    "HTTPConnection": "http connection",
    "HTTPSConnection": "http connection",
}

#: method tails that discharge a resource when called on a carrying binding.
RELEASE_TAILS = frozenset(
    {
        "cancel",
        "close",
        "shutdown",
        "join",
        "stop",
        "wait",
        "wait_closed",
        "kill",
        "terminate",
        "communicate",
        "release",
        "aclose",
        "detach",
    }
)

#: container stores: the label transfers to the container root instead of
#: escaping, so a later iterate-and-release over the container discharges.
_CONTAINER_TAILS = frozenset({"append", "add", "insert", "appendleft"})

#: read-only builtins: passing a resource here inspects it, it does not
#: take ownership — ``state.live_workers = len(workers)`` is not a release.
_NO_TRANSFER = frozenset(
    {
        "len",
        "isinstance",
        "issubclass",
        "bool",
        "str",
        "repr",
        "print",
        "id",
        "type",
        "format",
        "max",
        "min",
        "enumerate",
        "zip",
        "hash",
    }
)


class _LifecycleDomain(Domain):
    def __init__(self, checker: "ResourceLifecycleChecker"):
        self.checker = checker

    def call(self, walker, node, raw, recv, args, kwargs):
        tail = strip_self(raw).rsplit(".", 1)[-1] if raw else None

        if tail in _CONTAINER_TAILS:
            # workers.append(create_task(...)): the list owns the label now
            root = None
            if isinstance(node.func, ast.Attribute):
                root = dotted_name(node.func.value)
            moved = EMPTY
            for _, values in args:
                moved = moved | values
            if root is not None and moved:
                walker.env[root] = walker.env.get(root, EMPTY) | moved
                return EMPTY
        if tail in RELEASE_TAILS and recv:
            self.checker.discharge(recv, "release call")
        # any argument handed to any call transfers ownership to the
        # callee — except read-only builtins, which only inspect it
        if tail not in _NO_TRANSFER:
            for _, values in args:
                self.checker.discharge(values, "passed to a call")
            for values in kwargs.values():
                self.checker.discharge(values, "passed to a call")

        if tail in ACQUIRERS and self.checker.acquire_ok(walker, node, raw, tail):
            return frozenset(
                {self.checker.acquire(walker, node, ACQUIRERS[tail], raw)}
            )
        return EMPTY

    def with_item(self, walker, node, values):
        self.checker.discharge(values, "with block")
        return values

    def await_value(self, walker, node, values):
        # ``await task`` joins it; ``await create()`` merely produces it
        if not isinstance(node.value, ast.Call):
            self.checker.discharge(values, "awaited")
        return values

    def store(self, walker, root, values, node, target):
        if target == "attribute":
            self.checker.discharge(values, "stored on an attribute")

    def returned(self, walker, node, values):
        self.checker.discharge(values, "returned/yielded")


class ResourceLifecycleChecker(Checker):
    id = "RA009"
    title = "resource acquired without a release on exit paths"
    version = 1

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        graph: ProjectGraph = context.project_graph(sources)
        self._graph = graph
        findings: list[Finding] = []
        tracked = 0
        leaked = 0
        for fqn in sorted(graph.functions):
            self._acquired: dict[Label, ast.Call] = {}
            self._discharged: set[Label] = set()
            FunctionWalker(graph, fqn, _LifecycleDomain(self)).run()
            tracked += len(self._acquired)
            for label in sorted(
                self._acquired, key=lambda lb: (lb.line, lb.origin)
            ):
                if label in self._discharged:
                    continue
                leaked += 1
                findings.append(
                    Finding(
                        path=graph.source_of(fqn).rel,
                        line=label.line,
                        checker=self.id,
                        symbol=fqn.partition(":")[2],
                        message=(
                            f"{label.kind} acquired via {label.origin} has no "
                            "release on any path out of this scope; cancel/"
                            "close/shutdown it (try/finally and `with` count) "
                            "or hand it off (return it, store it on an "
                            "attribute, pass it to an owner)"
                        ),
                    )
                )
        context.note("ra009_resources", tracked)
        context.note("ra009_leaks", leaked)
        return findings

    # -- callbacks --------------------------------------------------------
    def acquire_ok(
        self, walker: FunctionWalker, node: ast.Call, raw: str, tail: str
    ) -> bool:
        """Filter acquisition look-alikes: only the *builtin* ``open`` is an
        acquisition here — ``webbrowser.open``/``os.open``-style tails are
        not file handles with a ``close`` contract this checker can see."""
        if tail == "open":
            return raw == "open"
        return True

    def acquire(
        self, walker: FunctionWalker, node: ast.Call, kind: str, raw: str
    ) -> Label:
        label = Label(kind=kind, origin=f"{raw}(...)", line=node.lineno)
        self._acquired[label] = node
        return label

    def discharge(self, values: frozenset[Label], how: str) -> None:
        for label in values:
            if label in self._acquired:
                self._discharged.add(label)
