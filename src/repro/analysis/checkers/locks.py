"""RA003: attributes mutated under ``self._lock`` are always accessed under it.

The memo cache (and anything else guarding state with a ``threading.Lock`` /
``RLock`` attribute) follows one discipline: if *any* method mutates an
attribute inside ``with self._lock:``, then *every* access to that attribute
— read or write, in any method of the class — must happen inside such a
block.  A lock that only guards the writers documents an invariant the
readers silently break.

The analysis is per-class and ``self``-rooted: a ``with`` on an attribute
whose name contains ``lock`` opens a guarded region; mutations are
assignments, ``del``, augmented assignment, subscript stores rooted at
``self.X``, and calls of known mutating methods (``append``, ``update``,
``pop``…) on it.  ``__init__``/``__post_init__`` are exempt — construction
happens before the object is shared.  Cross-object accesses
(``other._data`` under ``other._lock``) are out of scope by design: the
checker never guesses about aliasing, it enforces the local discipline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["LockDisciplineChecker"]

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "add",
    "update",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "setdefault",
    "sort",
    "reverse",
}

_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}


def _is_self_lock(node: ast.expr) -> str | None:
    """``self.X`` where X smells like a lock -> X (handles ``self._lock``
    and ``self._cache_lock`` alike)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and "lock" in node.attr.lower()
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.expr) -> str | None:
    """The ``X`` of ``self.X``, ``self.X[...]``, ``self.X.get(...)``'s base —
    the first attribute hanging directly off ``self`` in the chain."""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


@dataclass
class _Access:
    attr: str
    line: int
    method: str
    guarded: bool
    mutating: bool


@dataclass
class _ClassScan:
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)


class _MethodVisitor(ast.NodeVisitor):
    """Collect ``self.X`` accesses with their lock-nesting depth."""

    def __init__(self, scan: _ClassScan, method: str):
        self.scan = scan
        self.method = method
        self.depth = 0

    def _record(self, node: ast.expr, mutating: bool) -> None:
        attr = _self_attr_root(node)
        if attr is None or "lock" in attr.lower():
            return
        self.scan.accesses.append(
            _Access(
                attr=attr,
                line=node.lineno,
                method=self.method,
                guarded=self.depth > 0,
                mutating=mutating,
            )
        )

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = any(_is_self_lock(item.context_expr) for item in node.items)
        if locked:
            for item in node.items:
                lock = _is_self_lock(item.context_expr)
                if lock is not None:
                    self.scan.lock_attrs.add(lock)
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for sub in ast.walk(target):
                if isinstance(sub, (ast.Attribute, ast.Subscript)):
                    self._record(sub, mutating=True)
                    break
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, mutating=True)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record(target, mutating=True)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            root = _self_attr_root(func.value)
            if root is not None:
                # one mutating access for self.X.append(...); visit only the
                # arguments so the receiver is not double-counted as a load
                self._record(func.value, mutating=True)
                for arg in node.args:
                    self.visit(arg)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._record(node, mutating=False)
        # don't recurse: self.X.Y records X once, not X twice

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs inherit the current lock depth only if called inline;
        # be conservative and scan them at depth 0 is *wrong* for closures
        # used under the lock — scan at current depth instead
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef


class LockDisciplineChecker(Checker):
    id = "RA003"
    title = "lock-guarded attributes accessed outside the lock"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        guarded_classes = 0
        for source in sources:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                scan = _ClassScan(name=node.name)
                for method in node.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    _MethodVisitor(scan, method.name).visit(method)
                if not scan.lock_attrs:
                    continue
                guarded = {
                    a.attr
                    for a in scan.accesses
                    if a.guarded and a.mutating and a.method not in _EXEMPT_METHODS
                }
                if guarded:
                    guarded_classes += 1
                for access in scan.accesses:
                    if (
                        access.attr in guarded
                        and not access.guarded
                        and access.method not in _EXEMPT_METHODS
                    ):
                        findings.append(
                            Finding(
                                path=source.rel,
                                line=access.line,
                                checker=self.id,
                                symbol=f"{scan.name}.{access.method}",
                                message=(
                                    f"self.{access.attr} is mutated under "
                                    f"self.{sorted(scan.lock_attrs)[0]} elsewhere in "
                                    f"{scan.name} but accessed here without the lock"
                                ),
                            )
                        )
        context.note("ra003_guarded_classes", guarded_classes)
        return findings
