"""RA006: the error envelope must round-trip server -> wire -> client.

``wire.error_payload`` ships failures as ``{"error_type": type(exc).__name__,
"error": str(exc)}`` and the clients rebuild the original exception class by
looking the name up in ``wire._ERROR_TYPES``.  That table is the contract's
narrow waist, and it drifts in three ways this checker pins down statically:

* a ``raise SomeError(...)`` reachable from a server ``_route`` handler —
  through any number of helpers, across modules, via the project-wide call
  graph — whose class name has no ``_ERROR_TYPES`` entry reaches the client
  as a bare ``RuntimeError``, erasing the type the caller matches on;
* ``RemoteSession`` / ``AsyncRemoteSession`` must actually route error
  payloads through ``wire.raise_remote_error`` (the single decoder);
* the decoder itself must consult ``_ERROR_TYPES`` — delete the table's use
  and every entry silently stops mattering.

Re-raises (bare ``raise``), raises of variables (``raise exc_type(msg)``,
lowercase head), and ``assert`` statements are out of scope: the first two
preserve an already-enveloped type, the last is a programming-error trap
the envelope intentionally maps to 500.  When the tree under analysis has
no ``_ERROR_TYPES`` table or no ``_route`` handler (fixture subsets), the
checker is a no-op rather than flagging everything unreachable.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ProjectGraph, _own_statements
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["ErrorEnvelopeChecker"]

#: Client classes that must decode the envelope (exact class names).
_CLIENT_CLASSES = ("RemoteSession", "AsyncRemoteSession")

_DECODER = "raise_remote_error"


def _error_table(tree: ast.Module) -> tuple[set[str], int] | None:
    """``(keys, lineno)`` of a top-level ``_ERROR_TYPES = {...}`` dict."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if "_ERROR_TYPES" not in targets:
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        keys = {
            k.value
            for k in node.value.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
        return keys, node.lineno
    return None


def _raised_name(node: ast.Raise) -> tuple[str, int] | None:
    """Class name raised, or ``None`` for re-raises/variables/attributes."""
    exc = node.exc
    if exc is None:  # bare re-raise: preserves an already-checked type
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    while isinstance(exc, ast.Attribute):
        exc = ast.Name(id=exc.attr, ctx=ast.Load(), lineno=node.lineno)
    if not isinstance(exc, ast.Name):
        return None
    name = exc.id
    if not name[:1].isupper():  # ``raise exc_type(message)`` — a variable
        return None
    return name, node.lineno


class ErrorEnvelopeChecker(Checker):
    id = "RA006"
    title = "error-envelope contract drift"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        graph: ProjectGraph = context.project_graph(sources)

        wire_mod = wire_source = table = None
        for mod_name, mod_graph in graph.modules.items():
            found = _error_table(mod_graph.source.tree)
            if found is not None:
                wire_mod, wire_source, table = mod_name, mod_graph.source, found[0]
                break

        routes = [fqn for fqn in graph.functions if fqn.endswith("._route")]
        if table is None or not routes:
            return []  # fixture subset without the full contract surface

        findings: list[Finding] = []

        # Leg 1: every raise reachable from a _route handler maps to a key.
        chains = graph.closure(routes)
        raise_sites = 0
        for fqn, chain in chains.items():
            info = graph.functions[fqn]
            for node in _own_statements(info.node):
                if not isinstance(node, ast.Raise):
                    continue
                named = _raised_name(node)
                if named is None:
                    continue
                raise_sites += 1
                name, line = named
                if name in table:
                    continue
                mod = graph.module_of(fqn)
                shown = [graph.display(hop, relative_to=mod) for hop in chain]
                findings.append(
                    Finding(
                        path=graph.source_of(fqn).rel,
                        line=line,
                        checker=self.id,
                        symbol=fqn.partition(":")[2],
                        message=(
                            f"raises {name} on a server path "
                            f"({' -> '.join(shown)}) but "
                            f"wire._ERROR_TYPES has no {name!r} entry; "
                            "the client will see a bare RuntimeError — "
                            "add the entry or raise a mapped type"
                        ),
                    )
                )

        # Leg 2: both clients must route errors through the decoder.
        decoders = 0
        for cls in _CLIENT_CLASSES:
            calls_decoder = any(
                info.cls == cls
                and any(
                    site.raw.rpartition(".")[2] == _DECODER
                    for site in info.calls
                )
                for info in graph.functions.values()
            )
            has_class = any(
                info.cls == cls for info in graph.functions.values()
            )
            if not has_class:
                continue
            if calls_decoder:
                decoders += 1
                continue
            source, line = self._class_site(graph, cls)
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    checker=self.id,
                    symbol=cls,
                    message=(
                        f"{cls} never calls wire.{_DECODER}(); error "
                        "envelopes from the server would surface as raw "
                        "payload dicts instead of typed exceptions"
                    ),
                )
            )

        # Leg 3: the decoder must actually consult the table.
        decoder_fqn = f"{wire_mod}:{_DECODER}"
        decoder_info = graph.functions.get(decoder_fqn)
        if decoder_info is not None:
            uses_table = any(
                isinstance(node, ast.Name) and node.id == "_ERROR_TYPES"
                for node in _own_statements(decoder_info.node)
            )
            if not uses_table:
                findings.append(
                    Finding(
                        path=wire_source.rel,
                        line=decoder_info.node.lineno,
                        checker=self.id,
                        symbol=_DECODER,
                        message=(
                            f"{_DECODER}() no longer reads _ERROR_TYPES; "
                            "every entry in the table is dead and all "
                            "remote errors collapse to one type"
                        ),
                    )
                )

        context.note("ra006_error_types", len(table))
        context.note("ra006_server_raises", raise_sites)
        context.note("ra006_decoders", decoders)
        return findings

    @staticmethod
    def _class_site(graph: ProjectGraph, cls: str) -> tuple[SourceFile, int]:
        """Where ``cls`` is defined (its first method's source/line)."""
        best: tuple[SourceFile, int] | None = None
        for fqn, info in graph.functions.items():
            if info.cls != cls:
                continue
            site = (graph.source_of(fqn), info.node.lineno)
            if best is None or site[1] < best[1]:
                best = site
        assert best is not None
        return best
