"""RA008: unsanitized wire input must not reach a sensitive sink.

Everything a request hands the server is attacker-controlled: the JSON
body, the query string, the ``/v1/jobs/<id>`` path segment, the raw header
block.  This checker taints all of it at the source and follows it through
the dataflow engine (:mod:`repro.analysis.dataflow`) until it either passes
a **registered sanitizer** or reaches a **sink**:

========== ==========================================================
sources    parameters named ``payload``/``params``/``headers``/``body``/
           ``path``/``query`` on methods of the class that defines
           ``_route``; ``json.loads(...)``; stream reads
           (``reader.readline/readexactly/readuntil``)
sanitizers ``wire.bounded_body`` (validates *and bounds*),
           ``wire.job_items``, ``wire.instantiate_statement``,
           ``wire.engine_options``, ``wire.array_from_dict``,
           ``accepted_extents``, ``DesignRequest.from_dict``,
           ``_since_param``; ``int()``/``float()`` launder *content*
           (the result cannot traverse a path or name an attribute)
           but **not magnitude** — only a bounds check does that
sinks      filesystem paths (``open``, ``Path`` ops, ``os.remove``…),
           memo-cache keys (``*cache*.get/put``), allocations sized by
           the value (``[x] * n``, ``bytes(n)``, ``readexactly(n)``),
           dynamic dispatch (``getattr``/``eval``/``import_module``),
           and subprocess invocations
========== ==========================================================

Two taint kinds make the ``int()`` rule precise: ``taint:str`` (untrusted
*content*) and ``taint:size`` (untrusted *magnitude*).  A source mints
both; ``int(payload["bound"])`` drops the first and keeps the second, so
``await reader.readexactly(int(headers["content-length"]))`` — a request
asking the server to buffer an attacker-chosen number of bytes — is still
a finding until the length passes ``wire.bounded_body()``.

Taint follows calls one level deep: when a handler passes a tainted value
to a function the :class:`~repro.analysis.callgraph.ProjectGraph` resolves,
the callee is re-walked with the taint seeded into its parameter, so
``_route`` slicing a job id out of ``path`` and handing it to
``_job_detail`` keeps the id tainted inside ``_job_detail``.  Trees with no
``_route`` class (fixture subsets) are a no-op.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ProjectGraph, strip_self
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.dataflow import (
    EMPTY,
    Domain,
    FunctionWalker,
    Label,
    bind_arguments,
)
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["TaintChecker"]

T_STR = "taint:str"  #: untrusted content (strings, nested payloads)
T_SIZE = "taint:size"  #: untrusted magnitude (counts, lengths, bounds)
_KINDS = (T_STR, T_SIZE)

#: Parameter names that *are* the request on the ``_route`` class's methods.
_SOURCE_PARAMS = ("payload", "params", "headers", "body", "path", "query")

#: Call tails that read raw bytes off the wire (results are tainted, and a
#: tainted length argument is itself an allocation sink).
_STREAM_READS = ("readline", "readexactly", "readuntil")

#: sanitizer name (matched on the stripped dotted tail) -> kinds it clears.
SANITIZERS: dict[str, frozenset[str]] = {
    "int": frozenset({T_STR}),
    "float": frozenset({T_STR}),
    "len": frozenset({T_STR, T_SIZE}),
    "bool": frozenset({T_STR, T_SIZE}),
    "bounded_body": frozenset({T_STR, T_SIZE}),
    "job_items": frozenset({T_STR, T_SIZE}),
    "instantiate_statement": frozenset({T_STR, T_SIZE}),
    "engine_options": frozenset({T_STR, T_SIZE}),
    "_engine_options": frozenset({T_STR, T_SIZE}),
    "array_from_dict": frozenset({T_STR, T_SIZE}),
    "from_dict": frozenset({T_STR, T_SIZE}),
    "_since_param": frozenset({T_STR, T_SIZE}),
    "accepted_extents": frozenset({T_STR, T_SIZE}),
}

#: call-sink tails -> (taint kind that fires, human phrase).  Every tainted
#: argument position counts except where noted in ``_sink_args``.
_CALL_SINKS: dict[str, tuple[str, str]] = {
    "open": (T_STR, "a filesystem path (open)"),
    "unlink": (T_STR, "a filesystem path (unlink)"),
    "remove": (T_STR, "a filesystem path (remove)"),
    "rmtree": (T_STR, "a filesystem path (rmtree)"),
    "makedirs": (T_STR, "a filesystem path (makedirs)"),
    "rename": (T_STR, "a filesystem path (rename)"),
    "Path": (T_STR, "a filesystem path (Path)"),
    "getattr": (T_STR, "dynamic attribute dispatch (getattr)"),
    "eval": (T_STR, "dynamic code (eval)"),
    "exec": (T_STR, "dynamic code (exec)"),
    "import_module": (T_STR, "dynamic import (import_module)"),
    "run": (T_STR, "a subprocess invocation (run)"),
    "check_output": (T_STR, "a subprocess invocation (check_output)"),
    "check_call": (T_STR, "a subprocess invocation (check_call)"),
    "Popen": (T_STR, "a subprocess invocation (Popen)"),
    "system": (T_STR, "a subprocess invocation (system)"),
    "bytes": (T_SIZE, "an allocation sized by the value (bytes)"),
    "bytearray": (T_SIZE, "an allocation sized by the value (bytearray)"),
    "readexactly": (T_SIZE, "a network read sized by the value (readexactly)"),
}

#: subprocess sinks only fire when the call resolves through a subprocess/os
#: module alias — ``run`` alone is far too common a method name.
_NEEDS_MODULE = {
    "run": ("subprocess",),
    "check_output": ("subprocess",),
    "check_call": ("subprocess",),
    "Popen": ("subprocess",),
    "system": ("os", "subprocess"),
    "remove": ("os", "shutil"),
    "rename": ("os", "shutil"),
    "rmtree": ("os", "shutil"),
    "makedirs": ("os",),
}

#: getattr's *name* argument is position 1; everything else checks all args.
_SINK_ARG = {"getattr": 1}


def _route_class(graph: ProjectGraph) -> tuple[str, str] | None:
    """``(module, class)`` of the server class — the one defining ``_route``."""
    for fqn, info in graph.functions.items():
        if fqn.endswith("._route") and info.cls is not None:
            return graph.module_of(fqn), info.cls
    return None


class _TaintDomain(Domain):
    def __init__(self, checker: "TaintChecker", graph: ProjectGraph, depth: int):
        self.checker = checker
        self.graph = graph
        self.depth = depth  #: remaining call-summary budget (one level)

    # -- sources ----------------------------------------------------------
    def seed_params(self, fqn, info):
        if not self.checker.is_server_scope(fqn):
            return {}
        seeds = {}
        for arg in info.node.args.posonlyargs + info.node.args.args:
            if arg.arg in _SOURCE_PARAMS:
                seeds[arg.arg] = self.checker.source(
                    f"request {arg.arg!r}", arg.lineno, fqn
                )
        return seeds

    # -- the call hook: sanitizer, then source, then sink, then summary ---
    def call(self, walker, node, raw, recv, args, kwargs):
        tail = strip_self(raw).rsplit(".", 1)[-1] if raw else None

        if tail in SANITIZERS:
            cleared = SANITIZERS[tail]
            dirty = recv
            for _, values in args:
                dirty = dirty | values
            for values in kwargs.values():
                dirty = dirty | values
            return frozenset(v for v in dirty if v.kind not in cleared)

        if self.checker.is_server_scope(walker.fqn):
            if tail == "loads" and raw is not None and raw.startswith("json."):
                return self.checker.source("json.loads body", node.lineno, walker.fqn)
            if tail in _STREAM_READS:
                self._check_sink(walker, node, raw, tail, args, kwargs)
                return self.checker.source(
                    f"stream read ({tail})", node.lineno, walker.fqn
                )

        self._check_sink(walker, node, raw, tail, args, kwargs)
        result = self._summarize(walker, node, args, kwargs)
        if result is not None:
            return result
        return super().call(walker, node, raw, recv, args, kwargs)

    def binop(self, walker, node, left, right):
        # [x] * n — an allocation whose size an attacker picked
        if isinstance(node.op, ast.Mult):
            for own, other_node in ((right, node.left), (left, node.right)):
                sized = isinstance(other_node, ast.List) or (
                    isinstance(other_node, ast.Constant)
                    and isinstance(other_node.value, (str, bytes))
                )
                if sized:
                    for label in own:
                        if label.kind == T_SIZE:
                            self.checker.emit(
                                walker,
                                node.lineno,
                                label,
                                "a sequence-repeat allocation (`*`)",
                            )
        return left | right

    # -- helpers ----------------------------------------------------------
    def _check_sink(self, walker, node, raw, tail, args, kwargs):
        if tail in ("get", "put") and raw is not None:
            # memo-cache keys: ``*cache*.get/put`` — a request-controlled
            # key pollutes (or probes) the shared cache namespace
            chain = strip_self(raw).split(".")
            if len(chain) >= 2 and "cache" in chain[-2].lower():
                kind, phrase = T_STR, "a memo-cache key"
            else:
                return
        elif tail in _CALL_SINKS:
            kind, phrase = _CALL_SINKS[tail]
        else:
            return
        needs = _NEEDS_MODULE.get(tail)
        if needs is not None:
            head = strip_self(raw).split(".")[0] if raw else ""
            if head not in needs:
                return
        positions = list(enumerate(v for _, v in args))
        only = _SINK_ARG.get(tail)
        if only is not None:
            positions = [p for p in positions if p[0] == only]
        tainted = EMPTY
        for _, values in positions:
            tainted = tainted | values
        for values in kwargs.values():
            tainted = tainted | values
        for label in sorted(tainted, key=lambda lb: (lb.origin, lb.line)):
            if label.kind == kind:
                self.checker.emit(walker, node.lineno, label, phrase)

    def _summarize(self, walker, node, args, kwargs):
        """One-level call summary: re-walk a resolved callee with the
        caller's taint bound into its parameters."""
        if self.depth <= 0:
            return None
        callee = walker.resolved_callee(node)
        if callee is None or callee not in self.graph.functions:
            return None
        if not any(v for _, v in args) and not any(kwargs.values()):
            return None
        if callee in self.checker.walking:
            return None  # recursion (or a root already being walked)
        seed = bind_arguments(self.graph.functions[callee], node, args, kwargs)
        if not seed:
            return None
        inner = _TaintDomain(self.checker, self.graph, self.depth - 1)
        collector = _ReturnCollector(inner)
        self.checker.walking.add(callee)
        try:
            FunctionWalker(self.graph, callee, collector, seed=seed).run()
        finally:
            self.checker.walking.discard(callee)
        return collector.returned_values


class _ReturnCollector(Domain):
    """Wrap a domain, recording what the walked function returns — the
    summary's result value at the original call site."""

    def __init__(self, inner: Domain):
        self.inner = inner
        self.returned_values: frozenset[Label] = EMPTY

    def seed_params(self, fqn, info):
        return self.inner.seed_params(fqn, info)

    def call(self, walker, node, raw, recv, args, kwargs):
        return self.inner.call(walker, node, raw, recv, args, kwargs)

    def binop(self, walker, node, left, right):
        return self.inner.binop(walker, node, left, right)

    def returned(self, walker, node, values):
        self.returned_values = self.returned_values | values


class TaintChecker(Checker):
    id = "RA008"
    title = "unsanitized wire input reaching a sensitive sink"
    version = 1

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        graph: ProjectGraph = context.project_graph(sources)
        located = _route_class(graph)
        if located is None:
            return []  # fixture subset without a server surface
        self._server = located
        self._graph = graph
        self._sources: set[tuple[str, str, int]] = set()
        self._findings: dict[tuple, Finding] = {}
        self.walking: set[str] = set()

        mod, cls = located
        roots = sorted(
            fqn
            for fqn, info in graph.functions.items()
            if graph.module_of(fqn) == mod and info.cls == cls
        )
        for fqn in roots:
            domain = _TaintDomain(self, graph, depth=1)
            self.walking.add(fqn)
            try:
                FunctionWalker(graph, fqn, domain).run()
            finally:
                self.walking.discard(fqn)

        context.note("ra008_sources", len(self._sources))
        context.note("ra008_findings", len(self._findings))
        return sorted(self._findings.values())

    # -- callbacks from the domain ----------------------------------------
    def is_server_scope(self, fqn: str) -> bool:
        mod, cls = self._server
        info = self._graph.functions.get(fqn)
        return (
            info is not None
            and self._graph.module_of(fqn) == mod
            and info.cls == cls
        )

    def source(self, origin: str, line: int, fqn: str) -> frozenset[Label]:
        self._sources.add((fqn, origin, line))
        return frozenset(Label(kind=kind, origin=origin, line=line) for kind in _KINDS)

    def emit(
        self, walker: FunctionWalker, line: int, label: Label, phrase: str
    ) -> None:
        source = self._graph.source_of(walker.fqn)
        symbol = walker.fqn.partition(":")[2]
        finding = Finding(
            path=source.rel,
            line=line,
            checker=self.id,
            symbol=symbol,
            message=(
                f"request-derived value ({label.origin}, line {label.line}) "
                f"reaches {phrase} without passing a registered sanitizer; "
                "route it through wire.bounded_body()/wire.job_items()/"
                "int()-plus-bound before it sizes or names anything"
            ),
        )
        self._findings[finding.key] = finding
