"""RA001: blocking calls reachable from ``async def`` bodies.

One synchronous ``flush()`` on the event loop stalls *every* in-flight row
stream and health probe at once — the exact tail-latency failure mode the
service layer's executor discipline exists to prevent.  This checker walks
the project-wide call graph (:class:`~repro.analysis.callgraph.ProjectGraph`)
from every coroutine through directly-called sync helpers — across module
boundaries, so a coroutine in the coordinator that calls a helper defined in
``wire.py`` which calls ``json.dump`` is flagged just like a local call —
and flags calls matching two pattern tables:

* :data:`BLOCKING_EXACT` — stdlib calls that always block (``time.sleep``,
  ``open``, ``subprocess.*``, sync socket construction, file renames…);
* :data:`BLOCKING_TAILS` — the repo's own known-blocking surfaces, matched
  on their dotted tails (``session.flush``, ``cache.merge_from``,
  ``engine.evaluate``…), all of which either hit disk or take the memo-cache
  lock that an executor thread may hold for seconds.

Handing a callable *reference* to ``loop.run_in_executor`` (or a coroutine
to ``run_coroutine_threadsafe``) creates no call edge, so the sanctioned
patterns pass untouched; nested ``def``s and lambdas are separate scopes and
only count when the coroutine actually calls them.
"""

from __future__ import annotations

from repro.analysis.callgraph import strip_self
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["BLOCKING_EXACT", "BLOCKING_TAILS", "BlockingInAsyncChecker"]

#: Stdlib calls that always block the calling thread (matched on the full
#: dotted name, after stripping a leading ``self.``/``cls.``).
BLOCKING_EXACT = {
    "time.sleep": "sleeps the event loop",
    "open": "synchronous file I/O",
    "socket.socket": "synchronous socket construction",
    "socket.create_connection": "synchronous connect",
    "subprocess.run": "blocks until the child exits",
    "subprocess.call": "blocks until the child exits",
    "subprocess.check_call": "blocks until the child exits",
    "subprocess.check_output": "blocks until the child exits",
    "subprocess.Popen": "spawns a child synchronously",
    "os.system": "blocks until the shell exits",
    "os.popen": "synchronous pipe I/O",
    "os.replace": "synchronous file I/O",
    "os.rename": "synchronous file I/O",
    "os.remove": "synchronous file I/O",
    "os.unlink": "synchronous file I/O",
    "os.makedirs": "synchronous file I/O",
    "json.dump": "synchronous file I/O",
    "json.load": "synchronous file I/O",
    "pickle.dump": "synchronous file I/O",
    "pickle.load": "synchronous file I/O",
    "urllib.request.urlopen": "synchronous HTTP",
}

#: Known-blocking repro calls, matched on the dotted *tail* of the call
#: (``self.session.flush()`` -> ``session.flush``).  Everything here either
#: performs file I/O or contends on the MemoCache RLock, which a flushing
#: executor thread can hold for seconds on a large cache.
BLOCKING_TAILS = {
    "session.flush": "file I/O under the memo-cache lock",
    "session.evaluate": "model evaluation (may fan out to the process pool)",
    "session.evaluate_many": "batch model evaluation",
    "session.evaluate_names": "model evaluation",
    "session.explore": "a full design-space sweep",
    "session.sweep": "a full design-space sweep",
    "session.cache_stats": "takes the memo-cache lock (held across flushes)",
    "session.cache_pull": "serializes the full memo cache under its lock",
    "cache.flush": "file I/O under the memo-cache lock",
    "cache.load": "file I/O under the memo-cache lock",
    "cache.dump": "copies every section under the memo-cache lock",
    "cache.merge_from": "folds under the memo-cache lock",
    "cache.stats": "takes the memo-cache lock (held across flushes)",
    "engine.evaluate": "a full design-space sweep",
    "engine.sweep": "a full design-space sweep",
    "engine.evaluate_names": "dataflow scoring (model evaluation)",
    "().result": "synchronous wait on a future",
}


def classify_blocking(raw: str) -> str | None:
    """Why dotted call ``raw`` blocks, or ``None`` when it is loop-safe."""
    name = strip_self(raw)
    reason = BLOCKING_EXACT.get(name)
    if reason is not None:
        return reason
    for tail, tail_reason in BLOCKING_TAILS.items():
        if name == tail or name.endswith(f".{tail}"):
            return tail_reason
    return None


class BlockingInAsyncChecker(Checker):
    id = "RA001"
    title = "blocking call reachable from async def"
    version = 2  # project-wide: chains now cross module boundaries

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        graph = context.project_graph(sources)
        loop_chains = graph.loop_context()
        async_functions = sum(
            1 for info in graph.functions.values() if info.is_async
        )
        for fqn, chain in loop_chains.items():
            info = graph.functions.get(fqn)
            if info is None:
                continue
            mod = graph.module_of(fqn)
            qualname = fqn.partition(":")[2]
            shown = [graph.display(hop, relative_to=mod) for hop in chain]
            for site in info.calls:
                reason = classify_blocking(site.raw)
                if reason is None:
                    continue
                if len(chain) == 1:
                    via = f"in async {qualname}"
                else:
                    via = (
                        f"in {qualname} (reachable from async {shown[0]} "
                        f"via {' -> '.join(shown)})"
                    )
                findings.append(
                    Finding(
                        path=graph.source_of(fqn).rel,
                        line=site.node.lineno,
                        checker=self.id,
                        symbol=qualname,
                        message=(
                            f"blocking call {strip_self(site.raw)}() on the "
                            f"event loop {via}: {reason}; move it onto "
                            "loop.run_in_executor"
                        ),
                    )
                )
        context.note("ra001_async_functions", async_functions)
        return findings
