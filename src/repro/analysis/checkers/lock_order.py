"""RA005: lock-acquisition ordering across modules (ABBA deadlocks).

Two threads that acquire the same pair of locks in opposite orders will,
eventually, deadlock — the classic failure is two :class:`MemoCache`
instances merging into each other from two threads.  ``merge_from`` dodges
it with the documented snapshot-then-fold discipline (snapshot under the
*source* lock, release, fold under *ours* — never holding both), and this
checker is the machine proof that the discipline holds everywhere:

* every ``with``/``async with`` on an expression whose final attribute
  smells like a lock (``self._lock``, ``other._lock``, ``server.lock``,
  module-level ``_LOCK``) is an **acquisition site**;
* the lock's identity is its owning class (``self``/``cls`` -> the enclosing
  class; parameters resolve through their annotations, across modules) plus
  the attribute name — so ``self._lock`` and ``other._lock`` inside
  ``MemoCache.merge_from`` are the *same* lock key held by *different*
  instances;
* nesting creates an ordered edge ``outer -> inner``; so does calling — via
  the project-wide call graph — any function that (transitively) acquires a
  lock while one is held;
* any cycle in the resulting lock-order graph is a finding.  A same-key
  edge counts only when the two receivers differ (``self`` then ``other``
  is the two-instance deadlock; re-entering ``self._lock`` is what RLock is
  for), and same-key edges are never inferred across calls (receivers
  cannot be tracked through a call, and ``flush -> dump`` style reentrancy
  would drown the signal in false positives).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.callgraph import FunctionInfo, ProjectGraph, dotted_name
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["LockOrderChecker"]

#: First dotted token of a type annotation: ``"MemoCache | str"`` -> MemoCache
_ANNOTATION_HEAD = re.compile(r"[A-Za-z_][\w.]*")


def _lock_expr(node: ast.expr) -> tuple[str, str] | None:
    """``(receiver_root, attr)`` when ``node`` looks like a lock expression.

    ``self._lock`` -> ("self", "_lock"); module-level ``_LOCK`` -> ("", "_LOCK").
    """
    if isinstance(node, ast.Attribute) and "lock" in node.attr.lower():
        root = dotted_name(node.value)
        if root is not None and "(" not in root and "[" not in root:
            return (root, node.attr)
    if isinstance(node, ast.Name) and "lock" in node.id.lower():
        return ("", node.id)
    return None


def _annotation_head(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        match = _ANNOTATION_HEAD.search(node.value)
        return match.group(0) if match else None
    return dotted_name(node)


@dataclass
class _Acquisition:
    key: str  #: canonical lock identity, e.g. ``mod:MemoCache._lock``
    receiver: str  #: the receiver root as written (``self``, ``other``…)
    line: int
    fqn: str  #: function holding/acquiring


@dataclass
class _Edge:
    outer: _Acquisition
    inner: _Acquisition
    via_call: str | None = None  #: callee fqn when the edge crosses a call


class _FunctionScan(ast.NodeVisitor):
    """Lock scopes and the calls made inside them, for one function body."""

    def __init__(self, keyer):
        self.keyer = keyer  #: (receiver_root, attr) -> key | None
        self.held: list[_Acquisition] = []
        self.acquisitions: list[_Acquisition] = []
        self.nested: list[tuple[_Acquisition, _Acquisition]] = []
        #: (held acquisition, ast.Call) for every call made under a lock
        self.calls_under: list[tuple[_Acquisition, ast.Call]] = []

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[_Acquisition] = []
        for item in node.items:
            lock = _lock_expr(item.context_expr)
            if lock is None:
                continue
            acq = self.keyer(lock[0], lock[1], item.context_expr.lineno)
            if acq is None:
                continue
            acquired.append(acq)
            self.acquisitions.append(acq)
            for outer in self.held:
                self.nested.append((outer, acq))
            self.held.append(acq)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Call(self, node: ast.Call) -> None:
        for outer in self.held:
            self.calls_under.append((outer, node))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a nested def is its own scope: it runs when *called*, not here —
        # its body neither holds our locks nor contributes acquisitions
        return

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


class LockOrderChecker(Checker):
    id = "RA005"
    title = "lock-order cycle (potential deadlock)"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        graph: ProjectGraph = context.project_graph(sources)
        scans: dict[str, _FunctionScan] = {}
        for fqn, info in graph.functions.items():
            scans[fqn] = self._scan(graph, fqn, info)
        direct_keys = {
            fqn: {a.key for a in scan.acquisitions}
            for fqn, scan in scans.items()
        }

        # locks transitively acquired from each function (cycle-safe BFS)
        reach_cache: dict[str, frozenset[str]] = {}

        def locks_reached(fqn: str) -> frozenset[str]:
            cached = reach_cache.get(fqn)
            if cached is not None:
                return cached
            seen = {fqn}
            frontier = [fqn]
            keys: set[str] = set()
            while frontier:
                current = frontier.pop()
                keys |= direct_keys.get(current, set())
                for _site, callee in graph.calls.get(current, ()):
                    if callee is not None and callee not in seen:
                        seen.add(callee)
                        frontier.append(callee)
            out = frozenset(keys)
            reach_cache[fqn] = out
            return out

        edges: list[_Edge] = []
        for fqn, scan in scans.items():
            for outer, inner in scan.nested:
                if outer.key != inner.key or outer.receiver != inner.receiver:
                    edges.append(_Edge(outer, inner))
            for outer, call in scan.calls_under:
                raw = dotted_name(call.func)
                if raw is None:
                    continue
                callee = None
                for _site, resolved in graph.calls.get(fqn, ()):
                    if _site.node is call:
                        callee = resolved
                        break
                if callee is None:
                    continue
                for key in locks_reached(callee):
                    if key != outer.key:  # same-key via call: untrackable
                        inner = _Acquisition(
                            key=key,
                            receiver="<callee>",
                            line=call.lineno,
                            fqn=fqn,
                        )
                        edges.append(_Edge(outer, inner, via_call=callee))

        findings = self._find_cycles(graph, edges)
        context.note(
            "ra005_lock_sites",
            sum(len(s.acquisitions) for s in scans.values()),
        )
        context.note("ra005_lock_keys", len({a.key for s in scans.values() for a in s.acquisitions}))
        context.note("ra005_order_edges", len(edges))
        return findings

    def _scan(
        self, graph: ProjectGraph, fqn: str, info: FunctionInfo
    ) -> _FunctionScan:
        mod = graph.module_of(fqn)
        annotations: dict[str, str | None] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotations[arg.arg] = _annotation_head(arg.annotation)

        def keyer(receiver: str, attr: str, line: int) -> _Acquisition | None:
            root = receiver.split(".")[0] if receiver else ""
            if root in ("self", "cls") and info.cls is not None:
                key = f"{mod}:{info.cls}.{attr}"
            elif root == "":
                key = f"{mod}:{attr}"  # module-level lock
            else:
                annotated = annotations.get(root)
                located = (
                    graph._locate_class(mod, annotated) if annotated else None
                )
                if located is None:
                    return None  # untyped receiver: no sound identity
                key = f"{located[0]}:{located[1]}.{attr}"
            return _Acquisition(key=key, receiver=root, line=line, fqn=fqn)

        scan = _FunctionScan(keyer)
        for stmt in info.node.body:
            scan.visit(stmt)
        return scan

    def _find_cycles(
        self, graph: ProjectGraph, edges: list[_Edge]
    ) -> list[Finding]:
        adjacency: dict[str, set[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge.outer.key, set()).add(edge.inner.key)

        def reaches(start: str, goal: str) -> bool:
            seen = {start}
            frontier = [start]
            while frontier:
                for nxt in adjacency.get(frontier.pop(), ()):
                    if nxt == goal:
                        return True
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return False

        def shown(key: str) -> str:
            return key.partition(":")[2]

        findings: list[Finding] = []
        reported: set[tuple[str, str]] = set()
        for edge in edges:
            a, b = edge.outer.key, edge.inner.key
            if a == b:
                # two instances of the same class, nested: the two-thread
                # mirror image of this site is the deadlock
                pair = (a, b)
                if pair in reported:
                    continue
                reported.add(pair)
                mod = graph.module_of(edge.inner.fqn)
                findings.append(
                    Finding(
                        path=graph.source_of(edge.inner.fqn).rel,
                        line=edge.inner.line,
                        checker=self.id,
                        symbol=edge.inner.fqn.partition(":")[2],
                        message=(
                            f"acquires {shown(a)} of one instance "
                            f"({edge.inner.receiver!r}) while holding it on "
                            f"another ({edge.outer.receiver!r}); two threads "
                            "doing this in opposite directions deadlock — "
                            "snapshot under one lock, then fold under the "
                            "other (see MemoCache.merge_from)"
                        ),
                    )
                )
                continue
            if not reaches(b, a):
                continue
            pair = tuple(sorted((a, b)))
            if pair in reported:
                continue
            reported.add(pair)
            via = (
                f" via {graph.display(edge.via_call, relative_to=graph.module_of(edge.inner.fqn))}()"
                if edge.via_call
                else ""
            )
            findings.append(
                Finding(
                    path=graph.source_of(edge.inner.fqn).rel,
                    line=edge.inner.line,
                    checker=self.id,
                    symbol=edge.inner.fqn.partition(":")[2],
                    message=(
                        f"lock-order cycle: {shown(a)} -> {shown(b)} here"
                        f"{via}, but {shown(b)} -> {shown(a)} elsewhere; "
                        "pick one global acquisition order or drop to the "
                        "snapshot-then-fold pattern"
                    ),
                )
            )
        return findings
