"""RA004: asyncio primitives are loop-affine; threads go through the loop.

``asyncio.Event``, ``asyncio.Queue`` and friends are **not thread-safe**:
``event.set()`` from an executor thread mutates loop state without waking
the loop's selector — the waiter may sleep its full timeout, or race the
loop's own bookkeeping.  The sanctioned pattern (the ``/rows`` doorbell in
``server._poke_rows_streams``) is ``loop.call_soon_threadsafe(event.set)``:
the *reference* travels to the loop thread, the call happens there.

The checker builds a registry of attributes bound to asyncio primitives
(``self.X = asyncio.Event()``, dataclass
``field(default_factory=asyncio.Event)``), classifies functions into thread
context via the module call graph (targets of ``run_in_executor`` /
``Thread(target=...)`` / ``executor.submit`` plus everything they call), and
flags any direct mutator call (``.set()``, ``.clear()``, ``.put_nowait()``)
on a registered primitive from thread context.  References passed to
``call_soon_threadsafe`` are not calls, so the sanctioned pattern is
structurally invisible to the check — nothing to waive.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ModuleGraph, dotted_name
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["LoopAffinityChecker"]

#: Constructors whose result is loop-affine.
_PRIMITIVE_TYPES = {
    "asyncio.Event",
    "asyncio.Queue",
    "asyncio.Condition",
    "asyncio.Future",
    "asyncio.Lock",
    "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
}

#: Synchronous mutators that poke loop state when called off-loop.
_MUTATORS = {"set", "clear", "put_nowait", "set_result", "set_exception"}


def _primitive_ctor(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) in _PRIMITIVE_TYPES
    )


def _primitive_attrs(tree: ast.Module) -> set[str]:
    """Attribute names ever bound to an asyncio primitive, module-wide."""
    attrs: set[str] = set()
    for node in ast.walk(tree):
        # self.X = asyncio.Event()   (possibly behind `or`/`if` expressions)
        if isinstance(node, ast.Assign) and _primitive_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _primitive_ctor(node.value) and isinstance(node.target, ast.Attribute):
                attrs.add(node.target.attr)
            # dataclass: done: asyncio.Event = field(default_factory=asyncio.Event)
            elif (
                isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in ("field", "dataclasses.field")
                and isinstance(node.target, ast.Name)
            ):
                for kw in node.value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and dotted_name(kw.value) in _PRIMITIVE_TYPES
                    ):
                        attrs.add(node.target.id)
    return attrs


def _aliases(fn: ast.FunctionDef | ast.AsyncFunctionDef, attrs: set[str]) -> dict[str, str]:
    """Locals aliasing a primitive attribute: ``event = self._rows_wake``."""
    out: dict[str, str] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            targets = target.elts if isinstance(target, ast.Tuple) else [target]
            values = (
                node.value.elts
                if isinstance(node.value, ast.Tuple)
                and isinstance(target, ast.Tuple)
                and len(node.value.elts) == len(targets)
                else [node.value] * len(targets)
            )
            for tgt, val in zip(targets, values):
                if (
                    isinstance(tgt, ast.Name)
                    and isinstance(val, ast.Attribute)
                    and val.attr in attrs
                ):
                    out[tgt.id] = val.attr
    return out


class LoopAffinityChecker(Checker):
    id = "RA004"
    title = "asyncio primitive touched from a worker thread"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        primitives_seen = 0
        for source in sources:
            attrs = _primitive_attrs(source.tree)
            if not attrs:
                continue
            primitives_seen += len(attrs)
            graph = ModuleGraph(source)
            thread_chains = graph.thread_context()
            for qualname, chain in thread_chains.items():
                info = graph.functions.get(qualname)
                if info is None:
                    continue
                aliases = _aliases(info.node, attrs)
                for site in info.calls:
                    func = site.node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    if func.attr not in _MUTATORS:
                        continue
                    base = func.value
                    attr = None
                    if isinstance(base, ast.Attribute) and base.attr in attrs:
                        attr = base.attr
                    elif isinstance(base, ast.Name) and base.id in aliases:
                        attr = aliases[base.id]
                    if attr is None:
                        continue
                    origin = (
                        f"thread entry {chain[0]}"
                        if len(chain) == 1
                        else f"thread entry {chain[0]} via {' -> '.join(chain)}"
                    )
                    findings.append(
                        Finding(
                            path=source.rel,
                            line=site.node.lineno,
                            checker=self.id,
                            symbol=qualname,
                            message=(
                                f"asyncio primitive .{attr} mutated with "
                                f".{func.attr}() from {origin}; route it "
                                "through loop.call_soon_threadsafe"
                            ),
                        )
                    )
        context.note("ra004_primitives", primitives_seen)
        return findings
