"""The ``repro lint`` checker registry.

==========  ================================================================
``RA001``   blocking calls reachable from ``async def`` bodies (loop stalls),
            followed across module boundaries
``RA002``   server/client/docs wire-contract drift on the ``/v1`` surface
``RA003``   lock discipline: attributes mutated under ``self._lock`` must
            always be accessed under it
``RA004``   loop affinity: asyncio primitives touched from worker threads
            only via ``call_soon_threadsafe``
``RA005``   lock-order cycles (ABBA deadlocks) in the project-wide
            lock-acquisition graph
``RA006``   error-envelope contract: server raises map to
            ``wire._ERROR_TYPES`` and both clients decode them
``RA007``   fold determinism: no unordered iteration or unseeded
            randomness reachable from the sweep fold paths
``RA008``   taint: unsanitized request input (body fields, query params,
            path segments) reaching filesystem/cache/allocation/dispatch
            sinks without a registered sanitizer
``RA009``   resource lifecycle: tasks, pools, sockets, files, and service
            threads released/awaited/handed-off on every path out of
            their owning scope
==========  ================================================================

A checker is a class with an ``id``, a ``title``, a ``version`` (bump it
when the checker's logic changes — it keys the on-disk result cache), and a
``check(sources, context) -> list[Finding]`` method; add new ones to
``ALL_CHECKERS`` and they ride the waiver/baseline framework for free (see
``docs/development.md`` for the walkthrough).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["ALL_CHECKERS", "Checker", "LintContext"]


@dataclass
class LintContext:
    """Cross-file inputs a checker may need beyond the Python sources."""

    #: ``docs/service-api.md`` (path, text) when discoverable; ``None`` when
    #: linting an installed package with no docs tree alongside.
    docs_path: Path | None = None
    docs_text: str | None = None
    #: Populated by checkers with run metadata (e.g. RA002's route counts)
    #: so callers can assert the comparison actually happened.
    summary: dict | None = None
    #: The project-wide call graph, built once per run by the first checker
    #: that asks (RA001, RA005, RA006 and RA007 all share it).
    graph: object | None = None

    def note(self, key: str, value) -> None:
        if self.summary is not None:
            self.summary[key] = value

    def project_graph(self, sources: list[SourceFile]):
        """The memoized :class:`~repro.analysis.callgraph.ProjectGraph`."""
        if self.graph is None:
            from repro.analysis.callgraph import ProjectGraph

            self.graph = ProjectGraph(sources)
        return self.graph


class Checker:
    """Base class: subclasses set ``id``/``title`` and implement ``check``."""

    id: str = "RA000"
    title: str = ""
    #: Bumped whenever the checker's logic changes: part of the on-disk
    #: result-cache key, so a stale cache can never mask a new rule.
    version: int = 1

    def check(
        self, sources: list[SourceFile], context: LintContext
    ) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


def _registry() -> list[type[Checker]]:
    from repro.analysis.checkers.blocking import BlockingInAsyncChecker
    from repro.analysis.checkers.determinism import FoldDeterminismChecker
    from repro.analysis.checkers.error_contract import ErrorEnvelopeChecker
    from repro.analysis.checkers.lifecycle import ResourceLifecycleChecker
    from repro.analysis.checkers.lock_order import LockOrderChecker
    from repro.analysis.checkers.locks import LockDisciplineChecker
    from repro.analysis.checkers.loop_affinity import LoopAffinityChecker
    from repro.analysis.checkers.taint import TaintChecker
    from repro.analysis.checkers.wire_contract import WireContractChecker

    return [
        BlockingInAsyncChecker,
        WireContractChecker,
        LockDisciplineChecker,
        LoopAffinityChecker,
        LockOrderChecker,
        ErrorEnvelopeChecker,
        FoldDeterminismChecker,
        TaintChecker,
        ResourceLifecycleChecker,
    ]


ALL_CHECKERS: list[type[Checker]] = _registry()
