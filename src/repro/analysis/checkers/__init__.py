"""The ``repro lint`` checker registry.

==========  ================================================================
``RA001``   blocking calls reachable from ``async def`` bodies (loop stalls)
``RA002``   server/client/docs wire-contract drift on the ``/v1`` surface
``RA003``   lock discipline: attributes mutated under ``self._lock`` must
            always be accessed under it
``RA004``   loop affinity: asyncio primitives touched from worker threads
            only via ``call_soon_threadsafe``
==========  ================================================================

A checker is a class with an ``id``, a ``title``, and a
``check(sources, context) -> list[Finding]`` method; add new ones to
``ALL_CHECKERS`` and they ride the waiver/baseline framework for free (see
``docs/development.md`` for the walkthrough).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["ALL_CHECKERS", "Checker", "LintContext"]


@dataclass
class LintContext:
    """Cross-file inputs a checker may need beyond the Python sources."""

    #: ``docs/service-api.md`` (path, text) when discoverable; ``None`` when
    #: linting an installed package with no docs tree alongside.
    docs_path: Path | None = None
    docs_text: str | None = None
    #: Populated by checkers with run metadata (e.g. RA002's route counts)
    #: so callers can assert the comparison actually happened.
    summary: dict | None = None

    def note(self, key: str, value) -> None:
        if self.summary is not None:
            self.summary[key] = value


class Checker:
    """Base class: subclasses set ``id``/``title`` and implement ``check``."""

    id: str = "RA000"
    title: str = ""

    def check(
        self, sources: list[SourceFile], context: LintContext
    ) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


def _registry() -> list[type[Checker]]:
    from repro.analysis.checkers.blocking import BlockingInAsyncChecker
    from repro.analysis.checkers.locks import LockDisciplineChecker
    from repro.analysis.checkers.loop_affinity import LoopAffinityChecker
    from repro.analysis.checkers.wire_contract import WireContractChecker

    return [
        BlockingInAsyncChecker,
        WireContractChecker,
        LockDisciplineChecker,
        LoopAffinityChecker,
    ]


ALL_CHECKERS: list[type[Checker]] = _registry()
