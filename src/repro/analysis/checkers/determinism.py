"""RA007: fold paths must be bit-identical run to run.

The coordinator's contract is that a sharded sweep folds to *exactly* the
rows `LocalSession.sweep()` would produce — same values, same order.  That
only holds if nothing on the fold path consults a source whose value or
order changes between runs.  This checker closes the project-wide call
graph over the fold roots — methods named ``sweep`` or containing ``fold``
on classes whose names contain ``Coordinator``/``Engine``/``Shard`` (the
sweep executors; deliberately *not* the client ``Session`` classes, whose
retry jitter is legitimate transport behaviour) — and flags, in any
reachable function:

* **unseeded randomness / wall-clock reads** — ``random.*``, ``uuid.uuid1/
  uuid4``, ``time.time``/``monotonic``/``perf_counter``, ``datetime.now``,
  ``os.urandom``, ``secrets.*``: different every run by construction;
* **filesystem-order dependence** — ``os.listdir``/``os.scandir`` and
  ``Path.iterdir/glob/rglob`` return entries in whatever order the OS
  feels like, unless the call is wrapped directly in ``sorted(...)``;
* **bare-set iteration** — ``for x in {...}`` / ``for x in set(...)``
  (including iterating a local variable assigned one): Python set order
  is salted per process, so any fold over it diverges across workers.

Dict iteration is fine (insertion-ordered since 3.7) and sorted sets are
fine — the finding is specifically the *unordered* traversal reaching a
fold.  Genuine exceptions (e.g. an id that never influences folded rows)
take an inline ``# repro-lint: waive[RA007] reason``.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    FunctionInfo,
    ProjectGraph,
    _own_statements,
    dotted_name,
    strip_self,
)
from repro.analysis.checkers import Checker, LintContext
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["FoldDeterminismChecker"]

#: Class-name fragments that mark sweep/fold executors (never clients).
_ROOT_CLASS_HINTS = ("Coordinator", "Engine", "Shard")

#: Dotted names (matched on the stripped tail) that differ run to run.
_NONDETERMINISTIC = {
    "random.random": "unseeded randomness",
    "random.randint": "unseeded randomness",
    "random.randrange": "unseeded randomness",
    "random.choice": "unseeded randomness",
    "random.choices": "unseeded randomness",
    "random.shuffle": "unseeded randomness",
    "random.sample": "unseeded randomness",
    "random.uniform": "unseeded randomness",
    "random.getrandbits": "unseeded randomness",
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read (differs per process)",
    "time.perf_counter": "clock read (differs per process)",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "random id",
    "os.urandom": "OS entropy",
    "os.getpid": "process-dependent value",
}

#: Calls whose *result order* is OS-dependent (fine when wrapped in sorted()).
_UNORDERED_FS = {
    "os.listdir": "os.listdir order is filesystem-dependent",
    "os.scandir": "os.scandir order is filesystem-dependent",
}
_UNORDERED_FS_TAILS = {
    "iterdir": "Path.iterdir order is filesystem-dependent",
    "glob": "glob order is filesystem-dependent",
    "rglob": "rglob order is filesystem-dependent",
}


def _classify_call(raw: str) -> str | None:
    name = strip_self(raw)
    reason = _NONDETERMINISTIC.get(name)
    if reason is not None:
        return reason
    for tail, tail_reason in _NONDETERMINISTIC.items():
        if name.endswith(f".{tail}"):
            return tail_reason
    if name.startswith("secrets."):
        return "cryptographic randomness"
    return None


def _classify_fs(raw: str) -> str | None:
    name = strip_self(raw)
    if name in _UNORDERED_FS:
        return _UNORDERED_FS[name]
    tail = name.rsplit(".", 1)[-1]
    if "." in name and tail in _UNORDERED_FS_TAILS:
        return _UNORDERED_FS_TAILS[tail]
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        head = dotted_name(node.func)
        return head in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: a | b, a & b, a - b on sets stays a set; only treat
        # it as one when either side visibly is
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _sorted_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[ast.AST]:
    """Every node appearing as a direct argument of ``sorted(...)``."""
    wrapped: set[ast.AST] = set()
    for node in _own_statements(fn):
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func) == "sorted"
            and node.args
        ):
            wrapped.add(node.args[0])
    return wrapped


class FoldDeterminismChecker(Checker):
    id = "RA007"
    title = "nondeterminism reachable from a fold path"

    def check(self, sources: list[SourceFile], context: LintContext) -> list[Finding]:
        graph: ProjectGraph = context.project_graph(sources)
        roots = {
            fqn
            for fqn, info in graph.functions.items()
            if info.cls is not None
            and any(hint in info.cls for hint in _ROOT_CLASS_HINTS)
            and (info.node.name == "sweep" or "fold" in info.node.name)
        }
        chains = graph.closure(roots)
        findings: list[Finding] = []
        for fqn, chain in chains.items():
            info = graph.functions[fqn]
            findings.extend(self._scan(graph, fqn, chain, info))
        context.note("ra007_roots", len(roots))
        context.note("ra007_reachable", len(chains))
        return findings

    def _scan(
        self,
        graph: ProjectGraph,
        fqn: str,
        chain: list[str],
        info: FunctionInfo,
    ) -> list[Finding]:
        mod = graph.module_of(fqn)
        qualname = fqn.partition(":")[2]
        shown = [graph.display(hop, relative_to=mod) for hop in chain]
        where = (
            f"in {qualname}"
            if len(chain) == 1
            else f"in {qualname} (fold path: {' -> '.join(shown)})"
        )

        def finding(line: int, message: str) -> Finding:
            return Finding(
                path=graph.source_of(fqn).rel,
                line=line,
                checker=self.id,
                symbol=qualname,
                message=f"{message} {where}",
            )

        findings: list[Finding] = []
        sorted_wrapped = _sorted_args(info.node)

        # locals assigned a set expression in this function
        set_locals: set[str] = set()
        for node in _own_statements(info.node):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_locals.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expr(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    set_locals.add(node.target.id)

        def iter_is_unordered(expr: ast.expr) -> bool:
            if expr in sorted_wrapped:
                return False
            if _is_set_expr(expr):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_locals

        for node in _own_statements(info.node):
            if isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                if raw is None:
                    continue
                reason = _classify_call(raw)
                if reason is not None:
                    findings.append(
                        finding(
                            node.lineno,
                            f"{strip_self(raw)}() is nondeterministic "
                            f"({reason})",
                        )
                    )
                    continue
                fs_reason = _classify_fs(raw)
                if fs_reason is not None and node not in sorted_wrapped:
                    findings.append(
                        finding(
                            node.lineno,
                            f"{strip_self(raw)}() without sorted(): "
                            f"{fs_reason}",
                        )
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if iter_is_unordered(node.iter):
                    findings.append(
                        finding(
                            node.lineno,
                            "iterates a bare set (salted, per-process "
                            "order); sort it before folding",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if iter_is_unordered(gen.iter):
                        findings.append(
                            finding(
                                node.lineno,
                                "comprehension over a bare set (salted, "
                                "per-process order); sort it before folding",
                            )
                        )
        return findings
