"""``repro.analysis``: the repo's own static-analysis pass (``repro lint``).

A small AST-based checker suite that proves the properties the service
layer's concurrency and wire design depend on, instead of trusting review
to catch regressions:

* :mod:`~repro.analysis.checkers.blocking` (**RA001**) — no blocking call
  reachable from an ``async def`` body;
* :mod:`~repro.analysis.checkers.wire_contract` (**RA002**) — server
  routes, client paths and ``docs/service-api.md`` agree three ways;
* :mod:`~repro.analysis.checkers.locks` (**RA003**) — lock-guarded
  attributes are never touched outside the lock;
* :mod:`~repro.analysis.checkers.loop_affinity` (**RA004**) — asyncio
  primitives are only poked from threads via ``call_soon_threadsafe``.

Everything is pure :mod:`ast` — the analyzed code is parsed, never
imported.  Front doors: ``repro lint`` (CLI), :func:`run_lint` (tests/CI),
``docs/development.md`` (the checker catalog and waiver syntax).
"""

from repro.analysis.findings import Finding, Waiver
from repro.analysis.runner import (
    LintOptions,
    LintResult,
    format_text,
    result_to_json,
    run_lint,
)

__all__ = [
    "Finding",
    "LintOptions",
    "LintResult",
    "Waiver",
    "format_text",
    "result_to_json",
    "run_lint",
]
