"""``repro.analysis``: the repo's own static-analysis pass (``repro lint``).

A small AST-based checker suite that proves the properties the service
layer's concurrency and wire design depend on, instead of trusting review
to catch regressions:

* :mod:`~repro.analysis.checkers.blocking` (**RA001**) — no blocking call
  reachable from an ``async def`` body;
* :mod:`~repro.analysis.checkers.wire_contract` (**RA002**) — server
  routes, client paths and ``docs/service-api.md`` agree three ways;
* :mod:`~repro.analysis.checkers.locks` (**RA003**) — lock-guarded
  attributes are never touched outside the lock;
* :mod:`~repro.analysis.checkers.loop_affinity` (**RA004**) — asyncio
  primitives are only poked from threads via ``call_soon_threadsafe``;
* :mod:`~repro.analysis.checkers.lock_order` (**RA005**) — the
  project-wide lock-acquisition graph has no ABBA cycles;
* :mod:`~repro.analysis.checkers.error_contract` (**RA006**) — every
  server-reachable ``raise`` round-trips through ``wire._ERROR_TYPES``;
* :mod:`~repro.analysis.checkers.determinism` (**RA007**) — nothing
  nondeterministic is reachable from the sweep fold paths.

RA001 and RA005-RA007 share one project-wide, import-resolving call graph
(:class:`~repro.analysis.callgraph.ProjectGraph`); results are cached
whole-run on disk, keyed by content hash + checker versions.  Everything
is pure :mod:`ast` — the analyzed code is parsed, never imported.  Front
doors: ``repro lint`` (CLI), :func:`run_lint` (tests/CI),
``docs/development.md`` (the checker catalog and waiver syntax).
"""

from repro.analysis.findings import Finding, Waiver
from repro.analysis.runner import (
    LintOptions,
    LintResult,
    format_text,
    result_to_json,
    run_lint,
)
from repro.analysis.sarif import result_to_sarif

__all__ = [
    "Finding",
    "LintOptions",
    "LintResult",
    "Waiver",
    "format_text",
    "result_to_json",
    "result_to_sarif",
    "run_lint",
]
