"""Call graphs with async/thread execution contexts, module-local and project-wide.

The concurrency checkers need to know *where a function runs*, not just what
it does: a ``time.sleep`` is fine on an executor thread and poison on the
event loop.  :class:`ModuleGraph` classifies every function in one module into

* **loop context** — ``async def`` bodies, plus every sync function they
  (transitively) call *directly*.  A helper three hops below a coroutine
  still blocks the loop when it blocks.
* **thread context** — functions handed to worker threads by reference
  (``loop.run_in_executor(..., fn)``, ``threading.Thread(target=fn)``,
  ``executor.submit(fn)``, including through ``functools.partial``), plus
  everything they transitively call.

Module-local resolution is name-based: ``self.foo()`` resolves to the
enclosing class's ``foo`` (or a base class defined in the same module),
``C.helper()`` to a local class's static/class method, bare names to
siblings or module-level functions.

:class:`ProjectGraph` lifts this across every file the runner loads: each
module's ``import`` / ``from x import y`` statements become an alias table,
so ``wire.row_to_point(...)`` in the coordinator resolves to the function in
``repro/service/wire.py``, ``MemoCache.from_payload(...)`` to the classmethod
in the engine, and ``self.method()`` falls through locally-defined base
classes into the modules that define them.  Star imports resolve bare names
into the starred module; import cycles are harmless (resolution is a dict
lookup, reachability a BFS with a visited set).  Calls that resolve nowhere
keep their dotted text (``time.sleep``, ``self.session.flush``) — exactly
what the blocking-call pattern tables match against.  Nested ``def``s and
lambdas are separate scopes: *passing* one to an executor creates no loop
edge, only a direct call does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.source import SourceFile

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleGraph",
    "ProjectGraph",
    "dotted_name",
    "module_name",
]

#: Call attributes that receive a *callable reference* destined for another
#: thread: positional index of the callable argument for each.
_THREAD_DISPATCHERS = {
    "run_in_executor": 1,  # loop.run_in_executor(executor, fn, *args)
    "submit": 0,  # pool.submit(fn, *args)
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains; ``()``/``[]`` stand in for
    call/subscript bases so suffix matching still works
    (``run_coroutine_threadsafe(...).result`` -> ``().result``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    if isinstance(node, ast.Call):
        return "()"
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        return f"{base}[]" if base is not None else None
    return None


def strip_self(raw: str) -> str:
    """``self.session.flush`` -> ``session.flush`` (ditto ``cls.``)."""
    for prefix in ("self.", "cls."):
        if raw.startswith(prefix):
            return raw[len(prefix) :]
    return raw


def module_name(rel: str) -> str:
    """``repro/service/wire.py`` -> ``repro.service.wire`` (display-path form;
    ``__init__.py`` collapses onto its package)."""
    name = rel[:-3] if rel.endswith(".py") else rel
    name = name.replace("\\", "/").strip("/").replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name or "<string>"


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body."""

    raw: str  #: the dotted text as written (``self.session.flush``)
    node: ast.Call
    resolved: str | None = None  #: qualname of a same-module callee, if any


@dataclass
class FunctionInfo:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    cls: str | None
    parent: str | None  #: enclosing function qualname for nested defs
    calls: list[CallSite] = field(default_factory=list)
    #: qualnames referenced (not called) as thread-dispatch targets here
    dispatches: list[str] = field(default_factory=list)


def _own_statements(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk a function body without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope: its calls belong to it, not to us
        yield node
        stack.extend(ast.iter_child_nodes(node))


class ModuleGraph:
    """Functions, call edges, and execution contexts for one module."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> dotted base-class names (for method resolution
        #: through ``self.`` and ``Class.method`` dispatch)
        self.classes: dict[str, list[str]] = {}
        self._collect(source.tree, cls=None, parent=None)
        for info in self.functions.values():
            self._link(info)

    # -- construction --------------------------------------------------
    def _collect(self, node: ast.AST, cls: str | None, parent: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                bases = [dotted_name(b) for b in child.bases]
                self.classes[child.name] = [b for b in bases if b is not None]
                self._collect(child, cls=child.name, parent=None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if parent is not None:
                    qualname = f"{parent}.<locals>.{child.name}"
                elif cls is not None:
                    qualname = f"{cls}.{child.name}"
                else:
                    qualname = child.name
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    node=child,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    cls=cls,
                    parent=parent,
                )
                # nested defs: scope chains deeper than one level keep the
                # innermost parent (enough for this codebase's nesting)
                self._collect(child, cls=cls, parent=qualname)

    def _resolve(self, raw: str, info: FunctionInfo) -> str | None:
        """Map a dotted call target to a same-module qualname, if it is one."""
        bare = strip_self(raw)
        if "(" in bare or "[" in bare:
            return None
        if "." in bare:
            # ``C.helper()``: static/class-method dispatch on a local class
            head, _, rest = bare.partition(".")
            if head in self.classes and "." not in rest:
                return self._method_in_class(head, rest)
            return None
        if raw.startswith(("self.", "cls.")) and info.cls is not None:
            return self._method_in_class(info.cls, bare)
        # a bare name: sibling nested def first, then module-level function
        if info.parent is not None:
            candidate = f"{info.parent}.<locals>.{bare}"
            if candidate in self.functions:
                return candidate
        scope = info.qualname
        candidate = f"{scope}.<locals>.{bare}"
        if candidate in self.functions:
            return candidate
        return bare if bare in self.functions else None

    def _method_in_class(
        self, cls: str, method: str, _seen: set[str] | None = None
    ) -> str | None:
        """``cls.method`` in this module, walking locally-defined base classes."""
        seen = _seen or set()
        if cls in seen:
            return None  # inheritance cycle in broken source: stop
        seen.add(cls)
        candidate = f"{cls}.{method}"
        if candidate in self.functions:
            return candidate
        for base in self.classes.get(cls, ()):
            if base in self.classes:
                found = self._method_in_class(base, method, seen)
                if found is not None:
                    return found
        return None

    def _link(self, info: FunctionInfo) -> None:
        for node in _own_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None:
                continue
            info.calls.append(
                CallSite(raw=raw, node=node, resolved=self._resolve(raw, info))
            )
            self._record_dispatch(raw, node, info)

    def _record_dispatch(self, raw: str, call: ast.Call, info: FunctionInfo) -> None:
        """Note callables handed off to threads (executors, Thread targets)."""
        targets: list[ast.AST] = []
        tail = raw.rsplit(".", 1)[-1]
        if tail in _THREAD_DISPATCHERS:
            index = _THREAD_DISPATCHERS[tail]
            if len(call.args) > index:
                targets.append(call.args[index])
        if tail == "Thread":
            targets.extend(
                kw.value for kw in call.keywords if kw.arg == "target"
            )
        for target in targets:
            # unwrap functools.partial(fn, ...) to fn
            if isinstance(target, ast.Call):
                inner = dotted_name(target.func)
                if inner is not None and inner.rsplit(".", 1)[-1] == "partial":
                    if target.args:
                        target = target.args[0]
                    else:
                        continue
                else:
                    continue
            name = dotted_name(target)
            if name is None:
                continue
            resolved = self._resolve(name, info)
            if resolved is not None:
                info.dispatches.append(resolved)

    # -- contexts -------------------------------------------------------
    def _closure(self, roots: set[str]) -> dict[str, list[str]]:
        """Reachable qualnames with one shortest call chain each (BFS)."""
        chains: dict[str, list[str]] = {root: [root] for root in roots}
        frontier = list(roots)
        while frontier:
            current = frontier.pop(0)
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                callee = site.resolved
                if callee is not None and callee not in chains:
                    chains[callee] = chains[current] + [callee]
                    frontier.append(callee)
        return chains

    def loop_context(self) -> dict[str, list[str]]:
        """qualname -> call chain from an ``async def``, for everything that
        executes on the event loop via direct (non-executor) calls."""
        roots = {q for q, info in self.functions.items() if info.is_async}
        return self._closure(roots)

    def thread_roots(self) -> set[str]:
        roots: set[str] = set()
        for info in self.functions.values():
            roots.update(info.dispatches)
        return roots

    def thread_context(self) -> dict[str, list[str]]:
        """qualname -> chain from a thread entry point (executor/Thread)."""
        return self._closure(self.thread_roots())


class ProjectGraph:
    """The import-resolving call graph across every loaded source file.

    Function identities are ``"module:qualname"`` strings (``:`` keeps module
    and qualname unambiguous); :meth:`display` renders them back to something
    a human reads in a finding message.  Construction is linear in the source
    set: one :class:`ModuleGraph` per file, one alias table per file, then a
    single resolution pass over every call site.  Import cycles between
    modules are fine — resolution is a dict lookup and never recurses into
    imports, and :meth:`closure` is a BFS with a visited set.
    """

    def __init__(self, sources: list[SourceFile]):
        self.modules: dict[str, ModuleGraph] = {}
        for source in sources:
            self.modules[module_name(source.rel)] = ModuleGraph(source)
        self._imports: dict[str, dict[str, str]] = {}
        self._stars: dict[str, list[str]] = {}
        for mod, graph in self.modules.items():
            self._imports[mod], self._stars[mod] = self._import_table(
                graph.source.tree, mod
            )
        #: fqn -> FunctionInfo for every function in every module
        self.functions: dict[str, FunctionInfo] = {
            f"{mod}:{qual}": info
            for mod, graph in self.modules.items()
            for qual, info in graph.functions.items()
        }
        #: fqn -> [(CallSite, callee fqn | None)] — every call, resolved
        self.calls: dict[str, list[tuple[CallSite, str | None]]] = {}
        for mod, graph in self.modules.items():
            for qual, info in graph.functions.items():
                resolved: list[tuple[CallSite, str | None]] = []
                for site in info.calls:
                    if site.resolved is not None:
                        callee: str | None = f"{mod}:{site.resolved}"
                    else:
                        callee = self._resolve_external(mod, info, site.raw)
                    resolved.append((site, callee))
                self.calls[f"{mod}:{qual}"] = resolved

    # -- import tables --------------------------------------------------
    @staticmethod
    def _import_table(
        tree: ast.Module, module: str
    ) -> tuple[dict[str, str], list[str]]:
        """alias -> dotted target for every import anywhere in the module.

        Function-local imports are folded into the module table — a mild
        over-approximation that keeps lazy-import heavy modules (the CLI)
        resolvable without scope tracking.
        """
        table: dict[str, str] = {}
        stars: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        table[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # ``from .wire import x`` in a.b.c anchors at a.b
                    parts = module.split(".")
                    anchor = parts[: max(0, len(parts) - node.level)]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        if base:
                            stars.append(base)
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    table[alias.asname or alias.name] = target
        return table, stars

    # -- resolution ------------------------------------------------------
    def _resolve_external(
        self, mod: str, info: FunctionInfo, raw: str
    ) -> str | None:
        """Resolve a call the module-local pass could not: imports, star
        imports, and ``self.``-methods inherited from another module."""
        if raw.startswith(("self.", "cls.")):
            name = strip_self(raw)
            if info.cls is not None and "." not in name:
                return self._method_via_bases(mod, info.cls, name)
            return None
        if "(" in raw or "[" in raw:
            return None
        parts = raw.split(".")
        target = self._imports.get(mod, {}).get(parts[0])
        if target is not None:
            return self._lookup(".".join([target, *parts[1:]]))
        if len(parts) == 1:
            for star in self._stars.get(mod, ()):
                graph = self.modules.get(star)
                if graph is not None and parts[0] in graph.functions:
                    return f"{star}:{parts[0]}"
        return None

    def _lookup(self, full: str, _depth: int = 0) -> str | None:
        """``repro.service.wire.row_to_point`` -> its fqn, via the longest
        known-module prefix; class names map to ``__init__``/methods."""
        if _depth > 8:  # re-export chains this deep are broken source
            return None
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            graph = self.modules.get(mod)
            if graph is None:
                continue
            qual = ".".join(parts[cut:])
            if qual in graph.functions:
                return f"{mod}:{qual}"
            if qual in graph.classes:
                # a constructor call: edge to __init__ when one is defined
                return self._method_via_bases(mod, qual, "__init__")
            if "." in qual:
                cls, _, method = qual.rpartition(".")
                if cls in graph.classes:
                    return self._method_via_bases(mod, cls, method)
            # a package re-export: ``from repro.service import Coordinated-
            # Session`` binds through service/__init__.py's own import table
            head, rest = parts[cut], parts[cut + 1 :]
            reexport = self._imports.get(mod, {}).get(head)
            if reexport is not None:
                return self._lookup(".".join([reexport, *rest]), _depth + 1)
            return None  # the module exists but the symbol does not
        return None

    def _locate_class(self, mod: str, dotted: str) -> tuple[str, str] | None:
        """Resolve a base-class reference to ``(module, class name)``."""
        graph = self.modules.get(mod)
        if graph is None:
            return None
        if "." not in dotted:
            if dotted in graph.classes:
                return (mod, dotted)
            target = self._imports.get(mod, {}).get(dotted)
        else:
            parts = dotted.split(".")
            root = self._imports.get(mod, {}).get(parts[0])
            target = ".".join([root, *parts[1:]]) if root is not None else None
        if target is None:
            return None
        tparts = target.split(".")
        for cut in range(len(tparts) - 1, 0, -1):
            owner = ".".join(tparts[:cut])
            owner_graph = self.modules.get(owner)
            if owner_graph is None:
                continue
            qual = ".".join(tparts[cut:])
            return (owner, qual) if qual in owner_graph.classes else None
        return None

    def _method_via_bases(
        self,
        mod: str,
        cls: str,
        method: str,
        _seen: set[tuple[str, str]] | None = None,
    ) -> str | None:
        """``cls.method`` resolved through the full (cross-module) MRO walk."""
        seen = _seen or set()
        if (mod, cls) in seen:
            return None  # inheritance cycle: stop
        seen.add((mod, cls))
        graph = self.modules.get(mod)
        if graph is None:
            return None
        qual = f"{cls}.{method}"
        if qual in graph.functions:
            return f"{mod}:{qual}"
        for base in graph.classes.get(cls, ()):
            located = self._locate_class(mod, base)
            if located is not None:
                found = self._method_via_bases(*located, method, _seen=seen)
                if found is not None:
                    return found
        return None

    # -- queries ---------------------------------------------------------
    def module_of(self, fqn: str) -> str:
        return fqn.partition(":")[0]

    def display(self, fqn: str, relative_to: str | None = None) -> str:
        """``mod:qual`` -> ``qual`` at home, ``modbase.qual`` abroad."""
        mod, _, qual = fqn.partition(":")
        if relative_to is not None and mod == relative_to:
            return qual
        return f"{mod.rsplit('.', 1)[-1]}.{qual}"

    def source_of(self, fqn: str) -> SourceFile:
        return self.modules[self.module_of(fqn)].source

    def cross_module_edges(self) -> list[tuple[str, str]]:
        """Every resolved call site whose callee lives in another module."""
        return [
            (caller, callee)
            for caller, sites in self.calls.items()
            for _site, callee in sites
            if callee is not None
            and self.module_of(callee) != self.module_of(caller)
        ]

    def closure(self, roots: set[str]) -> dict[str, list[str]]:
        """Reachable fqns with one shortest call chain each (BFS)."""
        chains: dict[str, list[str]] = {
            root: [root] for root in roots if root in self.functions
        }
        frontier = list(chains)
        while frontier:
            current = frontier.pop(0)
            for _site, callee in self.calls.get(current, ()):
                if callee is not None and callee not in chains:
                    chains[callee] = chains[current] + [callee]
                    frontier.append(callee)
        return chains

    def loop_context(self) -> dict[str, list[str]]:
        """fqn -> call chain from an ``async def``, project-wide: a coroutine
        in one module reaches blocking helpers defined in any other."""
        roots = {fqn for fqn, info in self.functions.items() if info.is_async}
        return self.closure(roots)

    def thread_context(self) -> dict[str, list[str]]:
        """fqn -> chain from a thread entry point, closed project-wide."""
        roots: set[str] = set()
        for mod, graph in self.modules.items():
            for info in graph.functions.values():
                roots.update(f"{mod}:{d}" for d in info.dispatches)
        return self.closure(roots)
