"""A module-local call graph with async/thread execution contexts.

The concurrency checkers need to know *where a function runs*, not just what
it does: a ``time.sleep`` is fine on an executor thread and poison on the
event loop.  This module classifies every function in a module into

* **loop context** — ``async def`` bodies, plus every sync function they
  (transitively) call *directly*.  A helper three hops below a coroutine
  still blocks the loop when it blocks.
* **thread context** — functions handed to worker threads by reference
  (``loop.run_in_executor(..., fn)``, ``threading.Thread(target=fn)``,
  ``executor.submit(fn)``, including through ``functools.partial``), plus
  everything they transitively call.

Resolution is deliberately module-local and name-based: ``self.foo()``
resolves to the enclosing class's ``foo``, bare names to siblings or
module-level functions.  Calls into other modules stay as their dotted text
(``time.sleep``, ``self.session.flush``) — exactly what the blocking-call
pattern tables match against.  Nested ``def``s and lambdas are separate
scopes: *passing* one to an executor creates no loop edge, only a direct
call does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.source import SourceFile

__all__ = ["CallSite", "FunctionInfo", "ModuleGraph", "dotted_name"]

#: Call attributes that receive a *callable reference* destined for another
#: thread: positional index of the callable argument for each.
_THREAD_DISPATCHERS = {
    "run_in_executor": 1,  # loop.run_in_executor(executor, fn, *args)
    "submit": 0,  # pool.submit(fn, *args)
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains; ``()``/``[]`` stand in for
    call/subscript bases so suffix matching still works
    (``run_coroutine_threadsafe(...).result`` -> ``().result``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    if isinstance(node, ast.Call):
        return "()"
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        return f"{base}[]" if base is not None else None
    return None


def strip_self(raw: str) -> str:
    """``self.session.flush`` -> ``session.flush`` (ditto ``cls.``)."""
    for prefix in ("self.", "cls."):
        if raw.startswith(prefix):
            return raw[len(prefix) :]
    return raw


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body."""

    raw: str  #: the dotted text as written (``self.session.flush``)
    node: ast.Call
    resolved: str | None = None  #: qualname of a same-module callee, if any


@dataclass
class FunctionInfo:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    cls: str | None
    parent: str | None  #: enclosing function qualname for nested defs
    calls: list[CallSite] = field(default_factory=list)
    #: qualnames referenced (not called) as thread-dispatch targets here
    dispatches: list[str] = field(default_factory=list)


def _own_statements(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk a function body without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope: its calls belong to it, not to us
        yield node
        stack.extend(ast.iter_child_nodes(node))


class ModuleGraph:
    """Functions, call edges, and execution contexts for one module."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.functions: dict[str, FunctionInfo] = {}
        self._collect(source.tree, cls=None, parent=None)
        for info in self.functions.values():
            self._link(info)

    # -- construction --------------------------------------------------
    def _collect(self, node: ast.AST, cls: str | None, parent: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._collect(child, cls=child.name, parent=None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if parent is not None:
                    qualname = f"{parent}.<locals>.{child.name}"
                elif cls is not None:
                    qualname = f"{cls}.{child.name}"
                else:
                    qualname = child.name
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    node=child,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    cls=cls,
                    parent=parent,
                )
                # nested defs: scope chains deeper than one level keep the
                # innermost parent (enough for this codebase's nesting)
                self._collect(child, cls=cls, parent=qualname)

    def _resolve(self, raw: str, info: FunctionInfo) -> str | None:
        """Map a dotted call target to a same-module qualname, if it is one."""
        bare = strip_self(raw)
        if "." in bare or "(" in bare or "[" in bare:
            return None
        if raw.startswith(("self.", "cls.")) and info.cls is not None:
            candidate = f"{info.cls}.{bare}"
            return candidate if candidate in self.functions else None
        # a bare name: sibling nested def first, then module-level function
        if info.parent is not None:
            candidate = f"{info.parent}.<locals>.{bare}"
            if candidate in self.functions:
                return candidate
        scope = info.qualname
        candidate = f"{scope}.<locals>.{bare}"
        if candidate in self.functions:
            return candidate
        return bare if bare in self.functions else None

    def _link(self, info: FunctionInfo) -> None:
        for node in _own_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None:
                continue
            info.calls.append(
                CallSite(raw=raw, node=node, resolved=self._resolve(raw, info))
            )
            self._record_dispatch(raw, node, info)

    def _record_dispatch(self, raw: str, call: ast.Call, info: FunctionInfo) -> None:
        """Note callables handed off to threads (executors, Thread targets)."""
        targets: list[ast.AST] = []
        tail = raw.rsplit(".", 1)[-1]
        if tail in _THREAD_DISPATCHERS:
            index = _THREAD_DISPATCHERS[tail]
            if len(call.args) > index:
                targets.append(call.args[index])
        if tail == "Thread":
            targets.extend(
                kw.value for kw in call.keywords if kw.arg == "target"
            )
        for target in targets:
            # unwrap functools.partial(fn, ...) to fn
            if isinstance(target, ast.Call):
                inner = dotted_name(target.func)
                if inner is not None and inner.rsplit(".", 1)[-1] == "partial":
                    if target.args:
                        target = target.args[0]
                    else:
                        continue
                else:
                    continue
            name = dotted_name(target)
            if name is None:
                continue
            resolved = self._resolve(name, info)
            if resolved is not None:
                info.dispatches.append(resolved)

    # -- contexts -------------------------------------------------------
    def _closure(self, roots: set[str]) -> dict[str, list[str]]:
        """Reachable qualnames with one shortest call chain each (BFS)."""
        chains: dict[str, list[str]] = {root: [root] for root in roots}
        frontier = list(roots)
        while frontier:
            current = frontier.pop(0)
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                callee = site.resolved
                if callee is not None and callee not in chains:
                    chains[callee] = chains[current] + [callee]
                    frontier.append(callee)
        return chains

    def loop_context(self) -> dict[str, list[str]]:
        """qualname -> call chain from an ``async def``, for everything that
        executes on the event loop via direct (non-executor) calls."""
        roots = {q for q, info in self.functions.items() if info.is_async}
        return self._closure(roots)

    def thread_roots(self) -> set[str]:
        roots: set[str] = set()
        for info in self.functions.values():
            roots.update(info.dispatches)
        return roots

    def thread_context(self) -> dict[str, list[str]]:
        """qualname -> chain from a thread entry point (executor/Thread)."""
        return self._closure(self.thread_roots())
