"""Published results of prior accelerator generators (paper Table III).

These rows are *external baselines*: the paper compares against the numbers
PolySA (Cong & Wang, ICCAD 2018) and Susy (Lai et al., ICCAD 2020) report in
their own evaluations, not against re-synthesized designs.  We therefore
record them as constants, exactly as Table III prints them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BaselineRow", "PRIOR_GENERATORS"]


@dataclass(frozen=True)
class BaselineRow:
    """One generator x workload entry of paper Table III."""

    generator: str
    device: str
    workload: str
    lut_pct: float
    dsp_pct: float
    bram_pct: float
    freq_mhz: float
    gops: float


#: Table III as printed in the paper (Susy and PolySA columns).
PRIOR_GENERATORS = (
    BaselineRow("Susy", "Arria-10", "MM", 40.0, 93.0, 32.0, 202.0, 547.0),
    BaselineRow("Susy", "Arria-10", "Conv", 35.0, 84.0, 30.0, 220.0, 551.0),
    BaselineRow("PolySA", "VU9P", "MM", 49.0, 89.0, 89.0, 229.0, 555.0),
    BaselineRow("PolySA", "VU9P", "Conv", 49.0, 89.0, 71.0, 229.0, 548.0),
)
