"""FPGA resource/frequency/throughput model reproducing paper Table III.

The paper synthesizes a 10x16 FP32 systolic design (vectorization 8 per PE)
for a Xilinx VU9P with Vivado and compares against the published results of
the PolySA and Susy generators.  We reproduce the TensorLib rows with an
analytic mapping from generated-netlist resources to LUT/DSP/BRAM plus a
wire-profile frequency estimate; the comparator rows are the numbers those
papers report (they are external baselines, recorded as constants with
provenance in :mod:`repro.fpga.baselines`).
"""

from repro.fpga.resources import FPGAModel, FPGAReport, VU9P, FPGADevice
from repro.fpga.baselines import PRIOR_GENERATORS, BaselineRow

__all__ = [
    "FPGAModel",
    "FPGAReport",
    "FPGADevice",
    "VU9P",
    "PRIOR_GENERATORS",
    "BaselineRow",
]
