"""FPGA resource and frequency estimation for generated designs.

Maps a generated design (spec + geometry) to Xilinx-style LUT/DSP/BRAM usage
and estimates the achievable clock from the interconnect profile.  The
coefficients are calibrated against the paper's own synthesized design — a
10x16 FP32 systolic array with vectorization 8 on a VU9P hitting 263 MHz and
673 Gop/s (Table III), rising to 328 MHz with manual floorplanning (§VI-C) —
and reproduce the qualitative penalties the paper discusses: multicast
fanout and long buses cost frequency, which is why systolic dataflows are
"preferred in hardware ... because of the lower interconnection cost and
better frequency" despite multicast's better cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataflow import DataflowSpec
from repro.hw.geometry import Grid

__all__ = ["FPGADevice", "VU9P", "ARRIA10", "FPGAReport", "FPGAModel", "EVAL_DEFAULTS"]


@dataclass(frozen=True)
class FPGADevice:
    """Capacity of an FPGA part (paper §VI: VU9P with 6840 DSPs, 2160 BRAMs)."""

    name: str
    luts: int
    dsps: int
    brams: int  # BRAM36-equivalent


VU9P = FPGADevice("VU9P", luts=1_182_240, dsps=6_840, brams=2_160)
ARRIA10 = FPGADevice("Arria-10", luts=854_400, dsps=1_518, brams=2_713)


@dataclass
class FPGAReport:
    """One Table III row."""

    generator: str
    device: str
    workload: str
    lut: int
    dsp: int
    bram: int
    freq_mhz: float
    gops: float
    lut_pct: float
    dsp_pct: float
    bram_pct: float

    def row(self) -> dict[str, float | str]:
        return {
            "generator": self.generator,
            "device": self.device,
            "workload": self.workload,
            "LUT%": round(self.lut_pct),
            "DSP%": round(self.dsp_pct),
            "BRAM%": round(self.bram_pct),
            "MHz": round(self.freq_mhz),
            "Gop/s": round(self.gops),
        }


@dataclass(frozen=True)
class FPGAParams:
    """Calibrated mapping coefficients (FP32 datapath)."""

    dsp_per_fp32_mul: int = 2
    dsp_per_fp32_add: int = 2
    lut_per_mac: float = 490.0  # FP32 alignment/normalization glue
    lut_per_pe: float = 1_050.0  # PE control, muxing, internal registers
    lut_fixed: float = 8_000.0  # controller, AXI shell
    bram_bytes: float = 4_608.0  # one BRAM36 as a 4.5 KB buffer
    # critical path composition (ns)
    logic_ns: float = 2.80  # DSP cascade for an FP32 MAC stage
    base_wire_ns: float = 0.20
    hop_ns: float = 0.05  # per PE hop of the longest point-to-point net
    fanout_ns: float = 0.36  # per log2 of the widest multicast fanout
    slr_crossing_ns: float = 0.75  # removed by AutoBridge-style floorplanning
    conv_mux_ns: float = 0.28  # sliding-window line-buffer muxing


#: The one place the per-evaluation defaults live (mirrored by the keyword-only
#: arguments of :meth:`FPGAModel.evaluate` and re-used by the ``fpga`` backend
#: of :mod:`repro.api`):
#:
#: ==================== =========== ==================================
#: option               default     meaning
#: ==================== =========== ==================================
#: workload_label       ``"MM"``    Table III row label; labels starting
#:                                  with ``Conv`` add line-buffer LUTs,
#:                                  window-mux delay and halo'd tiles
#: buffer_bytes         ``None``    on-chip tile buffer per tensor; ``None``
#:                                  sizes it from the workload label
#: floorplan_optimized  ``False``   SLR-aware placement (§VI-C): removes the
#:                                  SLR-crossing term from the critical path
#: generator            ``"TensorLib"`` row attribution in the report
#: ==================== =========== ==================================
EVAL_DEFAULTS: dict[str, object] = {
    "workload_label": "MM",
    "buffer_bytes": None,
    "floorplan_optimized": False,
    "generator": "TensorLib",
}


class FPGAModel:
    """Estimate Table III metrics for a generated design.

    ``vec`` is the per-PE vectorization factor (the paper uses 8 FP32 MACs
    per PE); ``buffer_bytes`` the provisioned on-chip tile buffer.  All
    per-evaluation configuration is keyword-only with the defaults documented
    once in :data:`EVAL_DEFAULTS`.
    """

    def __init__(
        self,
        device: FPGADevice = VU9P,
        vec: int = 8,
        params: FPGAParams | None = None,
    ):
        self.device = device
        self.vec = vec
        self.params = params or FPGAParams()

    def evaluate(
        self,
        spec: DataflowSpec,
        rows: int,
        cols: int,
        *,
        workload_label: str = "MM",
        buffer_bytes: int | None = None,
        floorplan_optimized: bool = False,
        generator: str = "TensorLib",
    ) -> FPGAReport:
        p = self.params
        grid = Grid(rows, cols)
        pes = grid.size
        macs = pes * self.vec

        # ---- DSPs ----------------------------------------------------------
        dsp = macs * (p.dsp_per_fp32_mul + p.dsp_per_fp32_add)

        # ---- LUTs ----------------------------------------------------------
        lut = macs * p.lut_per_mac + pes * p.lut_per_pe + p.lut_fixed
        # extra datapath muxing for stationary double buffers
        for flow in spec.flows:
            if flow.kind.has_stationary_component:
                lut += pes * 64
        if workload_label.lower().startswith("conv"):
            lut += pes * 310  # line buffers / window muxing

        # ---- BRAM ----------------------------------------------------------
        if buffer_bytes is None:
            # Default: double-buffered square tiles sized to keep the array
            # busy; conv needs halo + multi-channel input tiles.
            per_tensor = 1_211_000 if workload_label.lower().startswith("conv") else 846_000
            buffer_bytes = per_tensor * len(spec.flows)
        bram = -(-buffer_bytes * 2 // int(p.bram_bytes))  # x2 double buffering

        # ---- frequency -----------------------------------------------------
        max_hop = 1
        max_fanout = 1
        for flow in spec.flows:
            if flow.kind.has_systolic_component and flow.systolic_direction:
                s1, s2, _ = flow.systolic_direction
                max_hop = max(max_hop, abs(s1) + abs(s2))
            mdirs = flow.multicast_directions
            for mc in mdirs:
                lines = grid.lines((mc[0], mc[1]))
                max_fanout = max(max_fanout, max(len(l.points) for l in lines))
            if flow.is_reduction_tree:
                # tree depth adds local routing, roughly like fanout
                max_fanout = max(max_fanout, 2)
        import math

        cp = p.logic_ns + p.base_wire_ns + p.hop_ns * max_hop
        if max_fanout > 1:
            cp += p.fanout_ns * math.log2(max_fanout)
        if workload_label.lower().startswith("conv"):
            cp += p.conv_mux_ns
        if not floorplan_optimized:
            cp += p.slr_crossing_ns
        freq_mhz = 1000.0 / cp

        gops = 2.0 * macs * freq_mhz / 1e3  # 2 ops per MAC, Gop/s

        return FPGAReport(
            generator=generator,
            device=self.device.name,
            workload=workload_label,
            lut=int(lut),
            dsp=int(dsp),
            bram=int(bram),
            freq_mhz=freq_mhz,
            gops=gops,
            lut_pct=100.0 * lut / self.device.luts,
            dsp_pct=100.0 * dsp / self.device.dsps,
            bram_pct=100.0 * bram / self.device.brams,
        )
