"""Cycle-count model for dataflow performance comparison (paper Fig. 5).

Normalized performance is defined as in the paper: execution cycles of an
ideal fully-utilized array divided by modelled cycles::

    peak_cycles = total_MACs / (rows * cols)
    normalized  = peak_cycles / modelled_cycles          (<= 1)

The model composes per-stage costs from the :class:`~repro.hw.plan.StagePlan`
geometry (the same tiling/lead/lag used to build the real controller) with
three analytic effects:

1. **Packing** — when a spatial loop's extent is smaller than the array
   dimension, several copies are packed side by side (paper: "XYP-SMM ...
   only 15 out of 16 rows of PE are used" for p = 3), folding other loop
   iterations into the same stage.
2. **Double buffering** — stationary load/drain overlaps the next stage's
   compute (paper Fig. 3(c,d)), so a stage costs
   ``max(exec, load, drain) + skew`` rather than their sum.
3. **Bandwidth stalls** — the per-cycle element demand of each tensor's
   dataflow is compared against the available on-chip bytes/cycle; demand
   above capacity stretches the stage linearly (paper: unicast MTTKRP/TTMc
   dataflows "perform worse ... bandwidth becomes insufficient").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataflow import DataflowSpec, DataflowType
from repro.hw.plan import StagePlan

__all__ = ["ArrayConfig", "PerfResult", "PerfModel"]


@dataclass(frozen=True)
class ArrayConfig:
    """Hardware configuration of the evaluation platform (paper §VI-A)."""

    rows: int = 16
    cols: int = 16
    freq_mhz: float = 320.0
    onchip_bw_gbps: float = 32.0
    dtype_bytes: int = 2  # INT16 / FP16 datapath

    @property
    def pes(self) -> int:
        return self.rows * self.cols

    @property
    def bytes_per_cycle(self) -> float:
        return self.onchip_bw_gbps * 1e9 / (self.freq_mhz * 1e6)

    @property
    def elements_per_cycle(self) -> float:
        return self.bytes_per_cycle / self.dtype_bytes


@dataclass
class PerfResult:
    """Modelled execution of one dataflow on one workload."""

    spec_name: str
    total_macs: int
    cycles: float
    peak_cycles: float
    utilization: float  # spatial PE utilization after packing
    bandwidth_stall: float  # >= 1.0
    stage_cycles: float
    n_stages: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def normalized(self) -> float:
        """Paper Fig. 5 metric: peak cycles / modelled cycles (<= 1)."""
        return min(1.0, self.peak_cycles / self.cycles)

    @property
    def runtime_ms(self) -> float:
        freq = self.breakdown.get("freq_mhz", 320.0)
        return self.cycles / (freq * 1e3)


class PerfModel:
    """Evaluate dataflow specs on a fixed array configuration."""

    def __init__(self, config: ArrayConfig | None = None, allow_packing: bool = True):
        self.config = config or ArrayConfig()
        self.allow_packing = allow_packing

    # ------------------------------------------------------------------
    def evaluate(self, spec: DataflowSpec) -> PerfResult:
        cfg = self.config
        plan = StagePlan(spec, cfg.rows, cfg.cols)
        timing = plan.timing

        # --- spatial utilization and packing -----------------------------
        f1, f2 = plan.footprint
        if self.allow_packing:
            packed1 = (cfg.rows // f1) * f1 if f1 < cfg.rows else f1
            packed2 = (cfg.cols // f2) * f2 if f2 < cfg.cols else f2
        else:
            packed1, packed2 = f1, f2
        pack_factor = (packed1 // f1) * (packed2 // f2)
        active_pes = self._active_pes(spec, plan) * pack_factor
        utilization = active_pes / cfg.pes

        # --- per-stage cycles --------------------------------------------
        # Skew: systolic fill (lead) + output flush (out_lag) + epilogue.
        skew = plan.lead + plan.out_lag + 1
        exec_cycles = plan.t_span
        # Double buffering overlaps load/drain with the next stage's compute.
        stage_cycles = max(exec_cycles, timing.load_len, timing.drain_len) + skew

        # --- stage count (packing folds stages together) -------------------
        n_stages = plan.n_stages() / pack_factor

        # --- bandwidth stall -----------------------------------------------
        demand = self._elements_per_cycle(spec, plan, active_pes)
        stall = max(1.0, demand / cfg.elements_per_cycle)

        cycles = n_stages * stage_cycles * stall
        total_macs = spec.statement.macs()
        peak = total_macs / cfg.pes
        return PerfResult(
            spec_name=spec.name,
            total_macs=total_macs,
            cycles=cycles,
            peak_cycles=peak,
            utilization=utilization,
            bandwidth_stall=stall,
            stage_cycles=stage_cycles,
            n_stages=n_stages,
            breakdown={
                "skew": skew,
                "exec": exec_cycles,
                "load": timing.load_len,
                "drain": timing.drain_len,
                "demand_elems_per_cycle": demand,
                "freq_mhz": cfg.freq_mhz,
                "pack_factor": pack_factor,
            },
        )

    def evaluate_named(self, statement, name: str) -> PerfResult:
        """Deprecated second entry point; use the unified API instead.

        Named-dataflow resolution now lives in one place — the ``perf``
        backend of :mod:`repro.api` (``Session.evaluate(workload, name)``)
        — so the model exposes a single ``evaluate(spec)`` signature like
        every other backend.
        """
        import warnings

        from repro.core.naming import spec_from_name

        warnings.warn(
            "PerfModel.evaluate_named() is deprecated; use "
            "repro.api.Session.evaluate(workload, name, backend='perf') or "
            "PerfModel.evaluate(naming.spec_from_name(statement, name))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evaluate(spec_from_name(statement, name))

    # ------------------------------------------------------------------
    def _active_pes(self, spec: DataflowSpec, plan: StagePlan) -> int:
        """Distinct PE coordinates touched by one (unpacked) tile."""
        space_rows = spec.stt.space_rows
        # Only loops with a nonzero column in some space row affect placement.
        relevant = [
            i
            for i in range(len(plan.tile_extents))
            if any(row[i] != 0 for row in space_rows)
        ]
        count = 1
        for i in relevant:
            count *= plan.tile_extents[i]
        if count > 1_000_000:
            return plan.footprint[0] * plan.footprint[1]
        import itertools

        seen = set()
        ranges = [
            range(plan.tile_extents[i]) if i in relevant else range(1)
            for i in range(len(plan.tile_extents))
        ]
        for x in itertools.product(*ranges):
            p1 = sum(c * v for c, v in zip(space_rows[0], x))
            p2 = sum(c * v for c, v in zip(space_rows[1], x))
            seen.add((p1, p2))
        return len(seen)

    def _elements_per_cycle(
        self, spec: DataflowSpec, plan: StagePlan, active_pes: int
    ) -> float:
        """Average on-chip traffic during the execute phase, in elements."""
        grid = plan.grid
        exec_cycles = max(1, plan.t_span)
        demand = 0.0
        for flow in spec.flows:
            kind = flow.kind
            if kind is DataflowType.UNICAST:
                demand += active_pes  # every PE hits the buffer every cycle
            elif kind is DataflowType.SYSTOLIC:
                s = flow.systolic_direction
                entries = sum(1 for p in grid.points() if grid.is_entry(p, (s[0], s[1])))
                demand += entries
            elif kind in (DataflowType.MULTICAST,):
                demand += len(grid.lines((flow.multicast_direction[0], flow.multicast_direction[1])))
            elif kind in (DataflowType.BROADCAST, DataflowType.FULL_REUSE):
                demand += 1
            elif kind is DataflowType.STATIONARY:
                # One tile of held values streamed once per stage.
                demand += active_pes / exec_cycles
            elif kind is DataflowType.MULTICAST_STATIONARY:
                mc = flow.multicast_direction
                demand += len(grid.lines((mc[0], mc[1]))) / exec_cycles
            elif kind is DataflowType.SYSTOLIC_MULTICAST:
                mc = flow.multicast_direction
                chains = grid.line_chain(
                    (mc[0], mc[1]),
                    (flow.systolic_direction[0], flow.systolic_direction[1]),
                )
                demand += len(chains)
            else:  # pragma: no cover
                raise AssertionError(kind)
        return demand
