"""Analytical performance model reproducing paper Fig. 5.

The functional simulator executes real netlists but cannot run paper-scale
workloads (a 16x16 array over ResNet layers); this package models execution
cycles analytically using the *same* :class:`~repro.hw.plan.StagePlan`
machinery the hardware uses, adding the effects the paper discusses:

- pipeline fill/drain skew of systolic dataflows vs multicast,
- double-buffered overlap of stationary load/drain with compute,
- on-chip bandwidth stalls for unicast dataflows,
- PE under-utilization for small loop extents (with packing),
- communication delay dominating short stages.

Cross-validated against the netlist simulator on small instances
(``tests/perf/test_crosscheck.py``).
"""

from repro.perf.model import PerfModel, PerfResult, ArrayConfig

__all__ = ["PerfModel", "PerfResult", "ArrayConfig"]
