"""Tensors and affine access maps.

Each appearance of a tensor in a kernel touches element ``I = A @ x`` where
``x`` is the loop iteration vector and ``A`` the integer *access matrix*
(paper §IV, Eq. 2).  Index expressions are sums of iterators — e.g. Conv2D's
``A[c, y+p, x+q]`` has an access row ``y+p`` with ones in the ``y`` and ``p``
columns — which covers every workload in paper Table II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.ir.iterspace import IterationSpace


class TensorRole(enum.Enum):
    """Whether a tensor is read (input) or accumulated into (output).

    The role matters for hardware template selection: a multicast *input*
    becomes a broadcast bus, a multicast *output* becomes a reduction tree
    (paper Table I / Fig. 3).
    """

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Tensor:
    """A named tensor of a given rank."""

    name: str
    rank: int
    role: TensorRole

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"tensor name must be an identifier, got {self.name!r}")
        if self.rank <= 0:
            raise ValueError(f"tensor {self.name!r} needs positive rank, got {self.rank}")

    @property
    def is_output(self) -> bool:
        return self.role is TensorRole.OUTPUT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}(rank={self.rank}, {self.role.value})"


class TensorAccess:
    """One appearance of a tensor in a statement, with its access matrix.

    ``matrix`` has one row per tensor dimension and one column per loop
    iterator of the statement's iteration space; entry ``(d, i)`` is the
    coefficient of iterator ``i`` in index dimension ``d``.  All coefficients
    are small non-negative integers for the paper's workloads, but any integer
    is accepted.
    """

    def __init__(self, tensor: Tensor, space: IterationSpace, matrix: Sequence[Sequence[int]]):
        rows = tuple(tuple(int(v) for v in row) for row in matrix)
        if len(rows) != tensor.rank:
            raise ValueError(
                f"access matrix for {tensor.name} has {len(rows)} rows, "
                f"expected rank {tensor.rank}"
            )
        for row in rows:
            if len(row) != space.rank:
                raise ValueError(
                    f"access matrix row {row} has {len(row)} columns, "
                    f"expected {space.rank} iterators"
                )
        self.tensor = tensor
        self.space = space
        self.matrix = rows

    def __repr__(self) -> str:
        return f"TensorAccess({self.tensor.name}, {self.matrix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TensorAccess):
            return NotImplemented
        return (
            self.tensor == other.tensor
            and self.space == other.space
            and self.matrix == other.matrix
        )

    def __hash__(self) -> int:
        return hash((self.tensor, self.space, self.matrix))

    def index_of(self, point: Sequence[int]) -> tuple[int, ...]:
        """Tensor element touched by loop iteration ``point`` (``I = A @ x``)."""
        if len(point) != self.space.rank:
            raise ValueError(f"point {point} does not match space rank {self.space.rank}")
        return tuple(
            sum(coeff * coord for coeff, coord in zip(row, point)) for row in self.matrix
        )

    def restrict(self, names: Sequence[str]) -> tuple[tuple[int, ...], ...]:
        """Columns of the access matrix for the selected iterators only.

        Reuse analysis inside the PE array considers only the three loops
        mapped to space-time (paper §IV); the remaining loops are sequential
        and do not create intra-stage reuse.
        """
        cols = self.space.positions(names)
        return tuple(tuple(row[c] for c in cols) for row in self.matrix)

    def shape(self) -> tuple[int, ...]:
        """Smallest tensor shape covering every access across the full space.

        Assumes non-negative coefficients (true of all Table II workloads);
        each dimension's size is the max index + 1 at the extreme loop point.
        """
        sizes = []
        for row in self.matrix:
            hi = sum(
                coeff * (it.extent - 1)
                for coeff, it in zip(row, self.space.iterators)
                if coeff > 0
            )
            lo = sum(
                coeff * (it.extent - 1)
                for coeff, it in zip(row, self.space.iterators)
                if coeff < 0
            )
            if lo < 0:
                raise ValueError(
                    f"negative indices reachable for {self.tensor.name}: row {row}"
                )
            sizes.append(hi + 1)
        return tuple(sizes)

    def footprint(self) -> int:
        """Number of distinct elements addressable by this access."""
        total = 1
        for size in self.shape():
            total *= size
        return total
