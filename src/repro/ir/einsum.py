"""Statements and the einsum-style kernel parser.

A :class:`Statement` is a perfect-loop-nest update of one output tensor from a
product of input tensors::

    C[m, n] += A[m, k] * B[n, k]                 (GEMM)
    C[k, y, x] += A[c, y+p, x+q] * B[k, c, p, q] (Conv2D)
    D[i, j] += A[i, k, l] * B[k, j] * C[l, j]    (MTTKRP)

:func:`parse_statement` turns such strings plus iterator extents into IR.
Index expressions are sums of iterators with optional positive integer
coefficients (``y+p``, ``2*x+q``), which is exactly the affine-without-offset
form the paper's access matrices encode.
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

import numpy as np

from repro.ir.iterspace import IterationSpace
from repro.ir.tensor import Tensor, TensorAccess, TensorRole

_ACCESS_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*\[([^\]]*)\]\s*")
_TERM_RE = re.compile(r"^\s*(?:(\d+)\s*\*\s*)?([A-Za-z_]\w*)\s*$")


class Statement:
    """A tensor algebra kernel: ``output += product(inputs)`` over a loop nest."""

    def __init__(
        self,
        name: str,
        space: IterationSpace,
        output: TensorAccess,
        inputs: Sequence[TensorAccess],
    ):
        if not output.tensor.is_output:
            raise ValueError(f"output access {output.tensor.name} must have OUTPUT role")
        if not inputs:
            raise ValueError("a statement needs at least one input tensor")
        for acc in inputs:
            if acc.tensor.is_output:
                raise ValueError(f"input access {acc.tensor.name} must have INPUT role")
        names = [acc.tensor.name for acc in (*inputs, output)]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tensor names in statement: {names}")
        self.name = name
        self.space = space
        self.output = output
        self.inputs = tuple(inputs)

    @property
    def accesses(self) -> tuple[TensorAccess, ...]:
        """All accesses, inputs in formula order then the output.

        This ordering defines the letter order in dataflow names such as
        ``MNK-SST`` (paper §VI: S/S for A/B, T for C).
        """
        return (*self.inputs, self.output)

    @property
    def tensor_names(self) -> tuple[str, ...]:
        return tuple(acc.tensor.name for acc in self.accesses)

    def access(self, tensor_name: str) -> TensorAccess:
        for acc in self.accesses:
            if acc.tensor.name == tensor_name:
                return acc
        raise KeyError(f"no tensor {tensor_name!r} in statement {self.name}")

    def __repr__(self) -> str:
        return f"Statement({self.name!r}, space={self.space!r})"

    # ------------------------------------------------------------------
    # Reference semantics
    # ------------------------------------------------------------------
    def random_inputs(self, rng: np.random.Generator | None = None, lo: int = -4, hi: int = 5) -> dict[str, np.ndarray]:
        """Random integer input tensors sized to cover every access."""
        rng = rng or np.random.default_rng(0)
        return {
            acc.tensor.name: rng.integers(lo, hi, size=acc.shape()).astype(np.int64)
            for acc in self.inputs
        }

    def reference(self, inputs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Dense reference execution of the loop nest (numpy, exact).

        Used as the golden model for simulator validation.  Runs the literal
        nested loops, so it is intentionally simple rather than fast.
        """
        out = np.zeros(self.output.shape(), dtype=np.int64)
        for point in self.space.points():
            term = 1
            for acc in self.inputs:
                term *= int(inputs[acc.tensor.name][acc.index_of(point)])
            out[self.output.index_of(point)] += term
        return out

    def macs(self) -> int:
        """Total multiply-accumulate operations (= iteration space volume)."""
        return self.space.volume()


def _parse_index_expr(expr: str, space: IterationSpace) -> tuple[int, ...]:
    """Parse one index expression (e.g. ``y+p``) into an access-matrix row."""
    row = [0] * space.rank
    for term in expr.split("+"):
        match = _TERM_RE.match(term)
        if not match:
            raise ValueError(f"cannot parse index term {term!r} in {expr!r}")
        coeff = int(match.group(1)) if match.group(1) else 1
        name = match.group(2)
        if name not in space:
            raise ValueError(f"unknown iterator {name!r} in index expression {expr!r}")
        row[space.position(name)] += coeff
    return tuple(row)


def _parse_access(text: str, role: TensorRole, space: IterationSpace) -> TensorAccess:
    match = _ACCESS_RE.fullmatch(text)
    if not match:
        raise ValueError(f"cannot parse tensor access {text!r}")
    name, indices = match.group(1), match.group(2)
    exprs = [e for e in (s.strip() for s in indices.split(",")) if e]
    if not exprs:
        raise ValueError(f"tensor {name!r} has no indices")
    matrix = [_parse_index_expr(e, space) for e in exprs]
    return TensorAccess(Tensor(name, len(exprs), role), space, matrix)


def parse_statement(formula: str, *, name: str | None = None, **extents: int) -> Statement:
    """Parse ``"C[m,n] += A[m,k] * B[n,k]"`` with iterator extents as kwargs.

    The iterator order of the resulting space follows the keyword order of
    ``extents`` so callers control the loop-nest order (which fixes matrix
    column order everywhere downstream).

    >>> stmt = parse_statement("C[m,n] += A[m,k] * B[n,k]", m=4, n=4, k=4)
    >>> stmt.tensor_names
    ('A', 'B', 'C')
    """
    if "+=" not in formula:
        raise ValueError(f"statement must use '+=': {formula!r}")
    space = IterationSpace.from_extents(**extents)
    lhs, rhs = formula.split("+=", maxsplit=1)
    output = _parse_access(lhs, TensorRole.OUTPUT, space)
    inputs = _split_rhs(rhs, space)
    used = {
        space.names[col]
        for acc in (*inputs, output)
        for row in acc.matrix
        for col, coeff in enumerate(row)
        if coeff
    }
    unused = set(space.names) - used
    if unused:
        raise ValueError(f"iterators {sorted(unused)} never used in {formula!r}")
    return Statement(name or _default_name(output), space, output, inputs)


def _split_rhs(rhs: str, space: IterationSpace) -> list[TensorAccess]:
    """Split the right-hand side on '*' tokens that separate tensor accesses.

    A separating '*' is one that occurs outside brackets.
    """
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in rhs:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "*" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [_parse_access(p, TensorRole.INPUT, space) for p in parts if p.strip()]


def _default_name(output: TensorAccess) -> str:
    return f"{output.tensor.name.lower()}_kernel"
