"""The tensor algebra workloads of paper Table II.

========================  =====================================================
Name                      Formula
========================  =====================================================
GEMM                      ``C[m,n] += A[m,k] * B[n,k]``
Batched-GEMV              ``C[m,n] += A[m,k,n] * B[m,k]``
Conv2D                    ``C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]``
Depthwise-Conv            ``C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]``
MTTKRP                    ``D[i,j] += A[i,k,l] * B[k,j] * C[l,j]``
TTMc                      ``D[i,j,k] += A[i,l,m] * B[l,j] * C[m,k]``
========================  =====================================================

Each factory takes loop extents (with small defaults convenient for tests) and
returns a :class:`~repro.ir.einsum.Statement`.  The two ResNet Conv2D layers
evaluated in paper Fig. 5(f, g) are provided with their published shapes
(layer 2: 56x56 images, 64 channels; layer 5 group: 7x7 images, 512 channels;
both with 3x3 kernels).
"""

from __future__ import annotations

from repro.ir.einsum import Statement, parse_statement

__all__ = [
    "gemm",
    "batched_gemv",
    "conv2d",
    "depthwise_conv",
    "mttkrp",
    "ttmc",
    "conv2d_resnet_layer2",
    "conv2d_resnet_layer5",
    "by_name",
    "TABLE_II",
]


def gemm(m: int = 64, n: int = 64, k: int = 64) -> Statement:
    """Matrix multiply ``C[m,n] += A[m,k] * B[n,k]`` (paper Table II row 1)."""
    return parse_statement("C[m,n] += A[m,k] * B[n,k]", name="gemm", m=m, n=n, k=k)


def batched_gemv(m: int = 16, n: int = 64, k: int = 64) -> Statement:
    """Batched matrix-vector product ``C[m,n] += A[m,k,n] * B[m,k]``.

    Tensor ``A`` is touched exactly once per loop point (its access matrix has
    full rank over any loop selection containing m, k, n), which is why the
    paper observes Batched-GEMV supports only unicast dataflow for ``A``.
    """
    return parse_statement("C[m,n] += A[m,k,n] * B[m,k]", name="batched_gemv", m=m, n=n, k=k)


def conv2d(
    k: int = 64,
    c: int = 64,
    y: int = 56,
    x: int = 56,
    p: int = 3,
    q: int = 3,
    *,
    name: str = "conv2d",
) -> Statement:
    """2-D convolution ``C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]``."""
    return parse_statement(
        "C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]", name=name, k=k, c=c, y=y, x=x, p=p, q=q
    )


def depthwise_conv(
    k: int = 64, y: int = 56, x: int = 56, p: int = 3, q: int = 3
) -> Statement:
    """Depthwise convolution ``C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]``.

    No large reduction dimension exists (only the 3x3 kernel loops reduce), so
    regular Conv2D dataflows map poorly — the motivation for paper Fig. 5(c).
    """
    return parse_statement(
        "C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]", name="depthwise_conv", k=k, y=y, x=x, p=p, q=q
    )


def mttkrp(i: int = 32, j: int = 32, k: int = 32, l: int = 32) -> Statement:
    """Matricized tensor times Khatri-Rao product (3 input tensors)."""
    return parse_statement(
        "D[i,j] += A[i,k,l] * B[k,j] * C[l,j]", name="mttkrp", i=i, j=j, k=k, l=l
    )


def ttmc(
    i: int = 32, j: int = 32, k: int = 32, l: int = 32, m: int = 32
) -> Statement:
    """Tensor-times-matrix chain ``D[i,j,k] += A[i,l,m] * B[l,j] * C[m,k]``."""
    return parse_statement(
        "D[i,j,k] += A[i,l,m] * B[l,j] * C[m,k]", name="ttmc", i=i, j=j, k=k, l=l, m=m
    )


def conv2d_resnet_layer2() -> Statement:
    """ResNet conv layer with 56x56 maps, 64->64 channels, 3x3 kernel."""
    return conv2d(k=64, c=64, y=56, x=56, p=3, q=3, name="conv2d_resnet_layer2")


def conv2d_resnet_layer5() -> Statement:
    """Late ResNet conv layer: 7x7 maps, 512->512 channels, 3x3 kernel.

    The tiny x = y = 7 extents cause the low PE utilization the paper reports
    for Fig. 5(g).
    """
    return conv2d(k=512, c=512, y=7, x=7, p=3, q=3, name="conv2d_resnet_layer5")


#: Table II factories keyed by workload name (default shapes).
TABLE_II = {
    "gemm": gemm,
    "batched_gemv": batched_gemv,
    "conv2d": conv2d,
    "depthwise_conv": depthwise_conv,
    "mttkrp": mttkrp,
    "ttmc": ttmc,
}


def by_name(name: str, **extents: int) -> Statement:
    """Instantiate a Table II workload by name with optional extent overrides."""
    try:
        factory = TABLE_II[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(TABLE_II)}") from None
    return factory(**extents)


def accepted_extents(name: str) -> set[str]:
    """The loop-extent keywords the Table II factory for ``name`` accepts.

    The single source of truth for extent validation/filtering — used by the
    CLI (to reject unknown ``--extent`` flags up front) and by the service
    wire format (so a remote session rejects exactly what a local one does).
    """
    import inspect

    try:
        factory = TABLE_II[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(TABLE_II)}") from None
    return set(inspect.signature(factory).parameters) - {"name"}
