"""Tensor algebra intermediate representation.

A kernel is a *perfect loop nest* updating one output tensor from one or more
input tensors, e.g. GEMM::

    C[m, n] += A[m, k] * B[n, k]

The IR captures:

- the :class:`~repro.ir.iterspace.IterationSpace` (ordered iterators with
  integer extents),
- one :class:`~repro.ir.tensor.TensorAccess` per tensor appearance, whose
  affine access map ``I = A @ x`` records which element each loop iteration
  touches (paper §IV), and
- the :class:`~repro.ir.einsum.Statement` tying them together.

Kernels can be written directly or parsed from einsum-style strings with
:func:`repro.ir.einsum.parse_statement`.  The paper's Table II workloads live
in :mod:`repro.ir.workloads`.
"""

from repro.ir.iterspace import Iterator, IterationSpace
from repro.ir.tensor import Tensor, TensorAccess, TensorRole
from repro.ir.einsum import Statement, parse_statement

__all__ = [
    "Iterator",
    "IterationSpace",
    "Tensor",
    "TensorAccess",
    "TensorRole",
    "Statement",
    "parse_statement",
]
