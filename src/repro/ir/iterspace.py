"""Iterators and iteration spaces for perfect loop nests.

The Space-Time Transformation (paper §II) operates on points of the iteration
space: a loop nest with iterators ``(i, j, k)`` and extents ``(M, N, K)``
defines the integer box ``[0, M) x [0, N) x [0, K)``.  :class:`IterationSpace`
stores the ordered iterators and provides point enumeration, volume
computation, and sub-space selection (the paper maps *three* selected loops to
2-D space + time; the remaining loops run sequentially).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator as TIterator, Sequence


@dataclass(frozen=True, order=True)
class Iterator:
    """A single loop iterator with a half-open extent ``[0, extent)``.

    Iterator names are single lowercase identifiers by convention (``m``,
    ``n``, ``k``, ``x``, ``p`` …) so they can be spelled in dataflow names like
    ``MNK-SST``.
    """

    name: str
    extent: int

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"iterator name must be an identifier, got {self.name!r}")
        if self.extent <= 0:
            raise ValueError(f"iterator {self.name!r} needs a positive extent, got {self.extent}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}<{self.extent}>"


class IterationSpace:
    """An ordered collection of :class:`Iterator` objects.

    The order is significant: access matrices and STT matrices index their
    columns by iterator position.
    """

    def __init__(self, iterators: Sequence[Iterator]):
        names = [it.name for it in iterators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate iterator names in {names}")
        if not iterators:
            raise ValueError("iteration space needs at least one iterator")
        self._iterators = tuple(iterators)
        self._index = {it.name: pos for pos, it in enumerate(self._iterators)}

    @classmethod
    def from_extents(cls, **extents: int) -> "IterationSpace":
        """Build a space from keyword arguments, e.g. ``from_extents(m=4, n=8)``.

        Keyword order is preserved (Python ≥3.7 keeps ``**kwargs`` ordered).
        """
        return cls([Iterator(name, extent) for name, extent in extents.items()])

    @property
    def iterators(self) -> tuple[Iterator, ...]:
        return self._iterators

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(it.name for it in self._iterators)

    @property
    def extents(self) -> tuple[int, ...]:
        return tuple(it.extent for it in self._iterators)

    @property
    def rank(self) -> int:
        return len(self._iterators)

    def __len__(self) -> int:
        return len(self._iterators)

    def __iter__(self) -> TIterator[Iterator]:
        return iter(self._iterators)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Iterator:
        return self._iterators[self._index[name]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IterationSpace):
            return NotImplemented
        return self._iterators == other._iterators

    def __hash__(self) -> int:
        return hash(self._iterators)

    def __repr__(self) -> str:
        inner = ", ".join(f"{it.name}={it.extent}" for it in self._iterators)
        return f"IterationSpace({inner})"

    def position(self, name: str) -> int:
        """Column index of iterator ``name`` in access/STT matrices."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no iterator {name!r} in {self.names}") from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def volume(self) -> int:
        """Number of points (total MAC operations of the kernel)."""
        vol = 1
        for it in self._iterators:
            vol *= it.extent
        return vol

    def points(self) -> TIterator[tuple[int, ...]]:
        """Enumerate all integer points in lexicographic (loop-nest) order."""
        return itertools.product(*(range(it.extent) for it in self._iterators))

    def select(self, names: Sequence[str]) -> "IterationSpace":
        """Sub-space of the named iterators, in the given order."""
        return IterationSpace([self[name] for name in names])

    def complement(self, names: Sequence[str]) -> "IterationSpace":
        """Sub-space of all iterators *not* named, preserving nest order.

        These are the loops the paper executes sequentially outside the PE
        array when more than three loops exist.
        """
        chosen = set(names)
        missing = chosen - set(self.names)
        if missing:
            raise KeyError(f"unknown iterators {sorted(missing)}")
        rest = [it for it in self._iterators if it.name not in chosen]
        if not rest:
            # A degenerate single-point space keeps downstream loops simple.
            return IterationSpace([Iterator("_unit", 1)])
        return IterationSpace(rest)

    def with_extents(self, **extents: int) -> "IterationSpace":
        """Copy of this space with some extents overridden (used by tiling)."""
        unknown = set(extents) - set(self.names)
        if unknown:
            raise KeyError(f"unknown iterators {sorted(unknown)}")
        return IterationSpace(
            [Iterator(it.name, extents.get(it.name, it.extent)) for it in self._iterators]
        )
