"""Unified public API: one session, one request type, pluggable backends.

The TensorLib pipeline exposes four evaluation backends that historically had
four incompatible call conventions (``CostModel.evaluate``,
``PerfModel.evaluate``/``evaluate_named``, ``FPGAModel.evaluate``,
``sim.harness.run_functional``).  This package is the coherent front door:

- :class:`~repro.api.types.DesignRequest` / :class:`~repro.api.types.EvalResult`
  — typed, versioned, JSON round-trippable descriptions of one evaluation;
- :class:`~repro.api.registry.Evaluator` + :func:`register_evaluator` — the
  pluggable backend registry (``"cost"``, ``"perf"``, ``"fpga"``, ``"sim"``
  built in);
- :class:`~repro.api.protocol.SessionProtocol` — the transport-agnostic
  session surface (``evaluate``/``evaluate_many``/``explore``/``sweep``/
  ``evaluate_names``/``cache_stats``/``flush``);
- :class:`~repro.api.session.LocalSession` — the in-process implementation
  owning backend selection, the shared memo cache, and the worker pool
  (``Session`` remains as a compatible alias).  The HTTP implementation,
  :class:`~repro.service.client.RemoteSession`, lives in :mod:`repro.service`.

Quickstart::

    from repro.api import LocalSession

    session = LocalSession(cache="memo.json")
    print(session.evaluate("gemm", "MNK-SST"))                  # perf
    print(session.evaluate("gemm", "MNK-SST", backend="cost"))  # area/power
    batch = session.evaluate_many(
        [session.request("gemm", "MNK-SST", backend=b) for b in ("perf", "cost")]
    )
    frontier = session.explore("gemm").pareto()
"""

from repro.api.protocol import SessionBase, SessionProtocol
from repro.api.registry import (
    Evaluator,
    available_backends,
    get_evaluator,
    register_evaluator,
    reset_registry,
    unregister_evaluator,
)
from repro.api.session import LocalSession, Session
from repro.api.types import (
    SCHEMA_VERSION,
    DesignRequest,
    EvalResult,
    SchemaVersionError,
)

__all__ = [
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "DesignRequest",
    "EvalResult",
    "Evaluator",
    "LocalSession",
    "Session",
    "SessionBase",
    "SessionProtocol",
    "available_backends",
    "get_evaluator",
    "register_evaluator",
    "reset_registry",
    "unregister_evaluator",
]
