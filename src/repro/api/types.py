"""Typed, versioned request/result types for the public evaluation API.

Every evaluation in the unified API travels as a :class:`DesignRequest` and
comes back as an :class:`EvalResult`.  Both are plain dataclasses with a
stable JSON representation (``to_json``/``from_json`` round-trip exactly) and
an explicit ``schema_version`` so persisted requests — memo-cache entries,
sharded-sweep manifests, service payloads — fail loudly instead of silently
misparsing when the schema evolves.

A request is *self-contained*: workload name + loop extents, the dataflow
(either a paper-style name like ``"MNK-SST"`` or an explicit selection + STT
matrix), the target backend, and the full hardware/cost configuration.  Its
:meth:`DesignRequest.cache_key` is the canonical JSON encoding, which is what
lets the two-level memo cache key *every* backend — cost, perf, FPGA
(Table III) and the functional simulator alike — with one scheme.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cost.model import CostParams
from repro.perf.model import ArrayConfig

__all__ = [
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "DesignRequest",
    "EvalResult",
]

#: Version of the request/result wire format.  Bump on incompatible change;
#: ``from_dict``/``from_json`` reject anything else.
SCHEMA_VERSION = 1


class SchemaVersionError(ValueError):
    """A serialized request/result carries an unsupported ``schema_version``."""


def _check_version(payload: Mapping[str, Any], kind: str) -> None:
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{kind} schema_version {version!r} is not supported "
            f"(this build speaks version {SCHEMA_VERSION})"
        )


def _check_fields(payload: Mapping[str, Any], cls, kind: str) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"{kind} has unknown field(s) {unknown}; known: {sorted(known)}")


@dataclass(frozen=True)
class DesignRequest:
    """One design-point evaluation, fully described.

    Parameters
    ----------
    workload:
        Table II workload name (see :data:`repro.ir.workloads.TABLE_II`).
    extents:
        Loop-extent overrides passed to the workload factory.
    dataflow:
        Paper-style dataflow name (``"MNK-SST"``); resolution policy comes
        from ``options["resolve"]`` (``"simplest"`` default, or ``"best"`` to
        score every matching STT with the performance model).
    selection / stt:
        Explicit design: the three selected loops and the STT matrix rows.
        Takes precedence over ``dataflow`` when both are given.
    backend:
        Registered evaluator name: ``"cost"``, ``"perf"``, ``"fpga"``,
        ``"sim"``, or anything added via
        :func:`repro.api.register_evaluator`.
    array / width / cost / sram_words:
        Hardware platform and cost-model calibration.
    options:
        Backend-specific knobs (JSON-serializable), e.g. ``vec`` /
        ``floorplan_optimized`` for ``fpga`` or ``seed`` / ``tile`` for
        ``sim``.
    """

    workload: str
    dataflow: str | None = None
    selection: tuple[str, ...] | None = None
    stt: tuple[tuple[int, ...], ...] | None = None
    backend: str = "perf"
    extents: Mapping[str, int] = field(default_factory=dict)
    array: ArrayConfig = field(default_factory=ArrayConfig)
    width: int = 16
    cost: CostParams | None = None
    sram_words: int = 32768
    options: Mapping[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if self.dataflow is None and self.stt is None:
            raise ValueError(
                "DesignRequest needs a dataflow name or an explicit selection+stt"
            )
        if self.stt is not None and self.selection is None:
            raise ValueError("an explicit stt matrix also needs its loop selection")
        # normalize mutable/sequence fields so equality and cache keys are
        # representation-independent
        object.__setattr__(self, "extents", dict(self.extents))
        object.__setattr__(self, "options", dict(self.options))
        if self.selection is not None:
            object.__setattr__(self, "selection", tuple(self.selection))
        if self.stt is not None:
            object.__setattr__(
                self, "stt", tuple(tuple(int(v) for v in row) for row in self.stt)
            )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "workload": self.workload,
            "dataflow": self.dataflow,
            "selection": list(self.selection) if self.selection is not None else None,
            "stt": [list(row) for row in self.stt] if self.stt is not None else None,
            "backend": self.backend,
            "extents": dict(self.extents),
            "array": dataclasses.asdict(self.array),
            "width": self.width,
            "cost": dataclasses.asdict(self.cost) if self.cost is not None else None,
            "sram_words": self.sram_words,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DesignRequest":
        _check_version(payload, "DesignRequest")
        _check_fields(payload, cls, "DesignRequest")
        data = dict(payload)
        if data.get("array") is not None:
            data["array"] = ArrayConfig(**data["array"])
        else:
            data.pop("array", None)
        if data.get("cost") is not None:
            data["cost"] = CostParams(**data["cost"])
        if data.get("selection") is not None:
            data["selection"] = tuple(data["selection"])
        if data.get("stt") is not None:
            data["stt"] = tuple(tuple(row) for row in data["stt"])
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DesignRequest":
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """Canonical encoding: the memo-cache key for this request."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class EvalResult:
    """Outcome of one :class:`DesignRequest`, uniform across backends.

    ``metrics`` holds the backend's numeric outputs under stable names
    (``normalized_perf``/``cycles`` for perf, ``area_mm2``/``power_mw`` for
    cost, ``lut``/``dsp``/``freq_mhz``/... for fpga, ``cycles_run`` for sim);
    ``details`` carries JSON-safe structured extras (resolved STT matrix,
    breakdowns, the Table III row).  A backend rejection is not an exception
    but ``ok=False`` plus a structured ``failure_stage``/``failure_reason`` —
    same philosophy as the engine's :class:`~repro.explore.engine.DesignFailure`
    channel.  ``cached`` is transport metadata: ``True`` when the result was
    served from the memo cache rather than computed.
    """

    backend: str
    workload: str
    dataflow: str | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)
    ok: bool = True
    failure_stage: str | None = None
    failure_reason: str | None = None
    cached: bool = False
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def failure(
        cls, backend: str, workload: str, stage: str, reason: str, dataflow: str | None = None
    ) -> "EvalResult":
        return cls(
            backend=backend,
            workload=workload,
            dataflow=dataflow,
            ok=False,
            failure_stage=stage,
            failure_reason=reason,
        )

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        # deep-copy the nested payload: serialized results land in the memo
        # cache, and an aliased dict would let caller mutations corrupt it
        return {
            "schema_version": self.schema_version,
            "backend": self.backend,
            "workload": self.workload,
            "dataflow": self.dataflow,
            "metrics": dict(self.metrics),
            "details": copy.deepcopy(self.details),
            "ok": self.ok,
            "failure_stage": self.failure_stage,
            "failure_reason": self.failure_reason,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvalResult":
        _check_version(payload, "EvalResult")
        _check_fields(payload, cls, "EvalResult")
        return cls(**dict(payload))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EvalResult":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        if not self.ok:
            return (
                f"EvalResult({self.backend}:{self.workload}, failed "
                f"[{self.failure_stage}] {self.failure_reason})"
            )
        shown = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.metrics.items()))
        tag = ", cached" if self.cached else ""
        return f"EvalResult({self.backend}:{self.workload}/{self.dataflow}, {shown}{tag})"
