"""Built-in evaluator backends: the four legacy call conventions, unified.

Before the API redesign every consumer glued the backends together by hand::

    CostModel(rows, cols, width).evaluate(spec)            # cost
    PerfModel(config).evaluate(spec) / .evaluate_named(..) # perf (two doors!)
    FPGAModel(vec=8).evaluate(spec, rows, cols, ...)       # fpga
    sim.harness.run_functional(spec, rows, cols, ...)      # sim

Each adapter here folds one of those into the single
``evaluate(DesignRequest) -> EvalResult`` signature.  Adapters are stateless:
models are built per request from the request's own array/width/cost fields
(construction is trivially cheap next to evaluation, and the Session-level
memo cache absorbs repeats), so one registry instance serves any mix of
configurations.

Backend rejections (degenerate skews, unsupported dataflows, functional
mismatches) come back as structured ``ok=False`` results, never exceptions —
the same philosophy as the engine's failure channel.
"""

from __future__ import annotations

from typing import Callable

from repro.api.registry import _register_builtin
from repro.api.types import DesignRequest, EvalResult
from repro.core.dataflow import DataflowSpec
from repro.core.naming import best_spec_from_name, spec_from_name
from repro.core.stt import STT
from repro.cost.model import CostModel
from repro.fpga.resources import ARRIA10, VU9P, FPGAModel
from repro.ir import workloads
from repro.ir.einsum import Statement
from repro.perf.model import PerfModel

__all__ = [
    "BUILTIN_EVALUATORS",
    "CostEvaluator",
    "PerfEvaluator",
    "FpgaEvaluator",
    "SimEvaluator",
    "resolve_request",
    "register_builtins",
]

#: Exception types that mean "this design is rejected", not "the code is
#: broken" — they become structured failures instead of propagating.  The
#: resolve stage needs the broad set (unknown workload names raise KeyError,
#: infeasible dataflow names LookupError); the backend stage is kept narrow
#: (matching the engine's ``_evaluate_one``) so a genuine bug — a typo'd dict
#: key, a broken model — propagates instead of being memoized as a bogus
#: ``ok=False`` rejection.
_RESOLVE_REJECTIONS = (ValueError, NotImplementedError, LookupError, KeyError)
_BACKEND_REJECTIONS = (ValueError, NotImplementedError)


def resolve_request(request: DesignRequest) -> tuple[Statement, DataflowSpec]:
    """Instantiate the workload statement and the design spec of a request.

    An explicit ``selection``+``stt`` wins; otherwise the ``dataflow`` name is
    resolved per ``options["resolve"]``: ``"simplest"`` (default) takes the
    first matching STT in complexity order, ``"best"`` scores every match
    (up to ``options["limit"]``) with the performance model on the request's
    array — the policy the CLI and the Fig. 5 benchmarks use.
    """
    statement = workloads.by_name(request.workload, **request.extents)
    if request.stt is not None:
        spec = DataflowSpec(statement, tuple(request.selection), STT(request.stt))
        return statement, spec
    resolve = request.options.get("resolve", "simplest")
    bound = int(request.options.get("bound", 1))
    if resolve == "best":
        model = PerfModel(request.array)
        spec = best_spec_from_name(
            statement,
            request.dataflow,
            lambda s: model.evaluate(s).normalized,
            bound=bound,
            limit=int(request.options.get("limit", 24)),
        )
    elif resolve == "simplest":
        spec = spec_from_name(statement, request.dataflow, bound=bound)
    else:
        raise ValueError(f"unknown resolve policy {resolve!r} (use 'simplest' or 'best')")
    return statement, spec


def _spec_details(spec: DataflowSpec) -> dict:
    return {
        "selection": list(spec.selected),
        "stt": [list(row) for row in spec.stt.matrix],
        "letters": spec.letters,
    }


def _evaluating(
    fn: Callable[[Statement, DataflowSpec], EvalResult],
    backend: str,
    request: DesignRequest,
) -> EvalResult:
    """Run one backend body, converting rejections into structured failures."""
    try:
        statement, spec = resolve_request(request)
    except _RESOLVE_REJECTIONS as exc:
        return EvalResult.failure(
            backend,
            request.workload,
            stage="resolve",
            reason=f"{type(exc).__name__}: {exc}",
            dataflow=request.dataflow,
        )
    try:
        return fn(statement, spec)
    except _BACKEND_REJECTIONS as exc:
        return EvalResult.failure(
            backend,
            request.workload,
            stage=backend,
            reason=f"{type(exc).__name__}: {exc}",
            dataflow=spec.name,
        )


class PerfEvaluator:
    """Cycle-count model (paper Fig. 5) behind the unified signature."""

    backend = "perf"

    def evaluate(self, request: DesignRequest) -> EvalResult:
        def run(statement: Statement, spec: DataflowSpec) -> EvalResult:
            r = PerfModel(request.array).evaluate(spec)
            return EvalResult(
                backend=self.backend,
                workload=request.workload,
                dataflow=spec.name,
                metrics={
                    "normalized_perf": r.normalized,
                    "cycles": r.cycles,
                    "peak_cycles": r.peak_cycles,
                    "utilization": r.utilization,
                    "bandwidth_stall": r.bandwidth_stall,
                    "runtime_ms": r.runtime_ms,
                },
                details={**_spec_details(spec), "breakdown": dict(r.breakdown)},
            )

        return _evaluating(run, self.backend, request)


class CostEvaluator:
    """Calibrated 55 nm area/power model (paper Fig. 6) adapter."""

    backend = "cost"

    def evaluate(self, request: DesignRequest) -> EvalResult:
        def run(statement: Statement, spec: DataflowSpec) -> EvalResult:
            model = CostModel.for_array(
                request.array,
                width=request.width,
                params=request.cost,
                sram_words=request.sram_words,
            )
            r = model.evaluate(spec)
            return EvalResult(
                backend=self.backend,
                workload=request.workload,
                dataflow=spec.name,
                metrics={"area_mm2": r.area_mm2, "power_mw": r.power_mw},
                details={
                    **_spec_details(spec),
                    "area_breakdown": dict(r.area_breakdown),
                    "power_breakdown": dict(r.power_breakdown),
                },
            )

        return _evaluating(run, self.backend, request)


_FPGA_DEVICES = {VU9P.name: VU9P, ARRIA10.name: ARRIA10}


class FpgaEvaluator:
    """FPGA resource/frequency model (paper Table III) adapter.

    ``options``: ``vec`` (default 8), ``device`` (``"VU9P"``/``"Arria-10"``),
    plus the keyword-only evaluation knobs documented in
    :data:`repro.fpga.resources.EVAL_DEFAULTS` (``workload_label``,
    ``buffer_bytes``, ``floorplan_optimized``, ``generator``).
    """

    backend = "fpga"

    def evaluate(self, request: DesignRequest) -> EvalResult:
        def run(statement: Statement, spec: DataflowSpec) -> EvalResult:
            opts = request.options
            device_name = opts.get("device", VU9P.name)
            try:
                device = _FPGA_DEVICES[device_name]
            except KeyError:
                raise ValueError(
                    f"unknown FPGA device {device_name!r}; known: {sorted(_FPGA_DEVICES)}"
                ) from None
            model = FPGAModel(device=device, vec=int(opts.get("vec", 8)))
            eval_kwargs = {
                k: opts[k]
                for k in ("workload_label", "buffer_bytes", "floorplan_optimized", "generator")
                if k in opts
            }
            r = model.evaluate(spec, request.array.rows, request.array.cols, **eval_kwargs)
            return EvalResult(
                backend=self.backend,
                workload=request.workload,
                dataflow=spec.name,
                metrics={
                    "lut": float(r.lut),
                    "dsp": float(r.dsp),
                    "bram": float(r.bram),
                    "freq_mhz": r.freq_mhz,
                    "gops": r.gops,
                    "lut_pct": r.lut_pct,
                    "dsp_pct": r.dsp_pct,
                    "bram_pct": r.bram_pct,
                },
                details={**_spec_details(spec), "row": r.row()},
            )

        return _evaluating(run, self.backend, request)


class SimEvaluator:
    """Functional netlist-vs-numpy verification adapter.

    ``options``: ``width`` (simulation datapath bits, default 32), ``seed``
    (input RNG), ``tile`` (loop -> tile-size mapping).  A mismatch between
    the simulated netlist and the numpy reference comes back as a structured
    ``ok=False`` result with stage ``"sim"``; success memoizes the cycle
    count and output checksum, which is what makes warm ``verify`` runs free.
    """

    backend = "sim"

    def evaluate(self, request: DesignRequest) -> EvalResult:
        from repro.sim.harness import verify_functional

        def run(statement: Statement, spec: DataflowSpec) -> EvalResult:
            opts = request.options
            try:
                summary = verify_functional(
                    spec,
                    request.array.rows,
                    request.array.cols,
                    width=int(opts.get("width", 32)),
                    tile=opts.get("tile"),
                    seed=int(opts.get("seed", 0)),
                )
            except AssertionError as exc:
                return EvalResult.failure(
                    self.backend,
                    request.workload,
                    stage="sim",
                    reason=f"functional mismatch: {exc}",
                    dataflow=spec.name,
                )
            return EvalResult(
                backend=self.backend,
                workload=request.workload,
                dataflow=spec.name,
                metrics={
                    "cycles_run": float(summary["cycles_run"]),
                    "elements": float(summary["elements"]),
                },
                details={**_spec_details(spec), "output_checksum": summary["output_checksum"]},
            )

        return _evaluating(run, self.backend, request)


#: Backend name -> built-in evaluator class.  ``evaluate_many`` consults this
#: to decide pool safety: only a name that *still* resolves to its built-in
#: class may travel to a spawned worker (which re-imports a fresh registry).
BUILTIN_EVALUATORS = {
    cls.backend: cls
    for cls in (CostEvaluator, PerfEvaluator, FpgaEvaluator, SimEvaluator)
}


def register_builtins() -> None:
    """Idempotently register the four built-in backends."""
    for cls in BUILTIN_EVALUATORS.values():
        _register_builtin(cls.backend, cls)


register_builtins()
