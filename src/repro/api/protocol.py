"""The transport-agnostic session protocol.

:class:`SessionProtocol` is the public evaluation surface extracted from the
original ``Session`` facade, so that *where* evaluation happens is an
implementation detail: :class:`~repro.api.session.LocalSession` runs the
backends in-process (with an optional worker pool),
:class:`~repro.service.client.RemoteSession` speaks the same protocol over
HTTP/JSON to a ``repro serve`` process.  Every consumer — the CLI, the
examples, the benchmarks — is written against the protocol and runs
unmodified over either.

The surface (all JSON-serializable at the edges, which is what makes the
remote implementation possible without a second wire format):

- :meth:`~SessionProtocol.evaluate` — one design, any backend, memoized;
- :meth:`~SessionProtocol.evaluate_many` — the batch primitive: a list of
  :class:`~repro.api.types.DesignRequest` evaluated with per-request memo
  hits, misses routed through the process pool;
- :meth:`~SessionProtocol.explore` / :meth:`~SessionProtocol.sweep` — the
  design-space pipeline (enumerate -> prune -> evaluate);
- :meth:`~SessionProtocol.evaluate_names` — paper dataflow names, best STT
  realization per name;
- :meth:`~SessionProtocol.cache_stats` / :meth:`~SessionProtocol.flush` —
  memo-cache introspection and persistence.

:class:`SessionBase` carries the implementation-shared half: the platform
defaults (array/width/cost/sram), the :meth:`~SessionBase.request` builder,
and the ``evaluate()`` argument coercion, so local and remote sessions build
bit-identical :class:`DesignRequest` payloads from the same convenience
arguments.
"""

from __future__ import annotations

from typing import (
    Any,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.api.types import DesignRequest, EvalResult
from repro.cost.model import CostParams
from repro.perf.model import ArrayConfig

__all__ = ["SessionProtocol", "SessionBase"]


@runtime_checkable
class SessionProtocol(Protocol):
    """What every session implementation — local or remote — answers to."""

    #: Default hardware platform used by :meth:`request` when a call does not
    #: carry its own ``array``.
    array: ArrayConfig

    def request(
        self,
        workload: str,
        dataflow: str | None = None,
        *,
        backend: str = "perf",
        extents: Mapping[str, int] | None = None,
        selection: Sequence[str] | None = None,
        stt: Sequence[Sequence[int]] | None = None,
        options: Mapping[str, Any] | None = None,
        array: ArrayConfig | None = None,
        width: int | None = None,
        cost: CostParams | None = None,
        sram_words: int | None = None,
    ) -> DesignRequest: ...

    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult: ...

    def evaluate_many(
        self, requests: Sequence[DesignRequest | Mapping[str, Any]]
    ) -> list[EvalResult]: ...

    def explore(self, workload, **evaluate_kwargs): ...

    def sweep(self, workloads: Sequence, configs=None, **evaluate_kwargs) -> list: ...

    def evaluate_names(
        self, statement, names: Sequence[str], *, bound: int = 1, limit: int = 24
    ) -> list: ...

    def cache_stats(self) -> dict[str, int]: ...

    def flush(self) -> None: ...


class SessionBase:
    """Shared request-building half of a session implementation.

    Holds the platform defaults and turns the convenience call form
    (``evaluate("gemm", "MNK-SST", backend="cost")``) into a self-contained
    :class:`DesignRequest` — identically for every transport, so a request
    built by a :class:`RemoteSession` evaluates to the same cache key the
    server computes.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        *,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
    ):
        self.array = array or ArrayConfig()
        self.width = width
        self.cost_params = cost_params
        self.sram_words = sram_words

    # -- lifecycle -----------------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    def flush(self) -> None:  # pragma: no cover - overridden by implementations
        """Persist session state (memo cache); no-op by default."""

    def cache_stats(self) -> dict[str, int]:  # pragma: no cover - overridden
        return {}

    # -- request building ----------------------------------------------
    def request(
        self,
        workload: str,
        dataflow: str | None = None,
        *,
        backend: str = "perf",
        extents: Mapping[str, int] | None = None,
        selection: Sequence[str] | None = None,
        stt: Sequence[Sequence[int]] | None = None,
        options: Mapping[str, Any] | None = None,
        array: ArrayConfig | None = None,
        width: int | None = None,
        cost: CostParams | None = None,
        sram_words: int | None = None,
    ) -> DesignRequest:
        """Build a :class:`DesignRequest`, filling defaults from the session."""
        return DesignRequest(
            workload=workload,
            dataflow=dataflow,
            selection=tuple(selection) if selection is not None else None,
            stt=tuple(tuple(row) for row in stt) if stt is not None else None,
            backend=backend,
            extents=dict(extents or {}),
            array=array or self.array,
            width=self.width if width is None else width,
            cost=cost if cost is not None else self.cost_params,
            sram_words=self.sram_words if sram_words is None else sram_words,
            options=dict(options or {}),
        )

    def _coerce_request(
        self,
        request: DesignRequest | Mapping[str, Any] | str,
        dataflow: str | None,
        request_kwargs: Mapping[str, Any],
    ) -> DesignRequest:
        """Normalize ``evaluate()`` arguments into one ready request."""
        if isinstance(request, DesignRequest):
            if dataflow is not None or request_kwargs:
                raise TypeError(
                    "pass either a DesignRequest or workload/dataflow arguments, not both"
                )
            return request
        if isinstance(request, Mapping):
            if dataflow is not None or request_kwargs:
                raise TypeError(
                    "pass either a request payload or workload/dataflow arguments, not both"
                )
            return DesignRequest.from_dict(request)
        return self.request(request, dataflow, **request_kwargs)

    @staticmethod
    def _coerce_requests(
        requests: Iterable[DesignRequest | Mapping[str, Any]],
    ) -> list[DesignRequest]:
        """Normalize an ``evaluate_many()`` batch (requests or payload dicts)."""
        out: list[DesignRequest] = []
        for request in requests:
            if isinstance(request, DesignRequest):
                out.append(request)
            elif isinstance(request, Mapping):
                out.append(DesignRequest.from_dict(request))
            else:
                raise TypeError(
                    "evaluate_many() takes DesignRequest objects or payload "
                    f"mappings, got {type(request).__name__}"
                )
        return out

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.array.rows}x{self.array.cols} @ "
            f"{self.array.freq_mhz:g} MHz, width={self.width})"
        )
