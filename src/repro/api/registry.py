"""The pluggable evaluator-backend registry.

Anything that can turn a :class:`~repro.api.types.DesignRequest` into an
:class:`~repro.api.types.EvalResult` is an :class:`Evaluator`; the four
built-in backends (``cost``, ``perf``, ``fpga``, ``sim``) adapt the
pre-existing models/harness, and downstream code can register its own with::

    @register_evaluator("rtl-synth")
    class SynthEvaluator:
        backend = "rtl-synth"
        def evaluate(self, request):
            ...

Built-ins load lazily on first lookup, so importing :mod:`repro.api` stays
cheap and registering a replacement backend never races the defaults.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.api.types import DesignRequest, EvalResult

__all__ = [
    "Evaluator",
    "register_evaluator",
    "unregister_evaluator",
    "get_evaluator",
    "available_backends",
    "reset_registry",
]


@runtime_checkable
class Evaluator(Protocol):
    """One evaluation backend: ``evaluate(request) -> EvalResult``."""

    backend: str

    def evaluate(self, request: DesignRequest) -> EvalResult: ...


#: backend name -> zero-argument factory (usually the evaluator class)
_REGISTRY: dict[str, Callable[[], Evaluator]] = {}
#: lazily-instantiated evaluators, one per backend name
_INSTANCES: dict[str, Evaluator] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from repro.api import backends

        backends.register_builtins()  # idempotent: never clobbers user entries


def register_evaluator(name: str, factory: Callable[[], Evaluator] | None = None, *, override: bool = False):
    """Register an evaluator backend under ``name``.

    Usable directly (``register_evaluator("x", XEval)``) or as a class
    decorator (``@register_evaluator("x")``).  Re-registering an existing
    name requires ``override=True`` — accidental shadowing of a built-in is
    an error, deliberate replacement is supported.
    """
    if factory is None:
        return lambda cls: register_evaluator(name, cls, override=override)
    _ensure_builtins()
    if name in _REGISTRY and not override:
        raise ValueError(
            f"evaluator backend {name!r} is already registered; "
            "pass override=True to replace it"
        )
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)
    return factory


def unregister_evaluator(name: str) -> None:
    """Remove a backend (built-ins reappear after :func:`reset_registry`)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise LookupError(f"no evaluator backend {name!r} registered")
    del _REGISTRY[name]
    _INSTANCES.pop(name, None)


def get_evaluator(name: str) -> Evaluator:
    """The (cached) evaluator instance for ``name``.

    Raises ``LookupError`` naming the registered backends when unknown.
    """
    _ensure_builtins()
    instance = _INSTANCES.get(name)
    if instance is None:
        factory = _REGISTRY.get(name)
        if factory is None:
            raise LookupError(
                f"unknown evaluator backend {name!r}; registered: {available_backends()}"
            )
        # factory errors (including KeyError) propagate as themselves
        instance = _INSTANCES[name] = factory()
    return instance


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def reset_registry() -> None:
    """Restore the registry to the built-in backends only (test helper)."""
    global _builtins_loaded
    _REGISTRY.clear()
    _INSTANCES.clear()
    _builtins_loaded = False
    _ensure_builtins()


def _register_builtin(name: str, factory: Callable[[], Evaluator]) -> None:
    """Registration path used by :mod:`repro.api.backends` at import time.

    Bypasses ``_ensure_builtins`` (it *is* the builtin load) and never
    overwrites a user registration that won the race.
    """
    _REGISTRY.setdefault(name, factory)
