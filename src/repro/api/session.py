"""The :class:`Session` facade — the single front door to evaluation.

A session owns the three things every consumer used to wire up by hand:

- **backend selection** — ``evaluate()`` routes requests through the
  evaluator registry, so cost/perf/FPGA/simulation all answer to one call;
- **the memo cache** — one two-level :class:`~repro.explore.engine.MemoCache`
  shared by single-design requests (``api`` section, keying *every* backend
  including FPGA Table III and the functional simulator) and by the
  design-space engine (``points``/``spaces``/``names`` sections);
- **the worker pool** — ``explore()``/``sweep()`` delegate to one lazily
  built :class:`~repro.explore.engine.EvaluationEngine` configured with the
  session's process-pool settings.

Usage::

    from repro.api import Session

    with Session(array=ArrayConfig(rows=16, cols=16), cache="dse.json") as s:
        r = s.evaluate("gemm", "MNK-SST")                  # perf backend
        c = s.evaluate("gemm", "MNK-SST", backend="cost")  # same front door
        result = s.explore("gemm")                         # full design space
        results = s.sweep(["gemm", "depthwise_conv"])      # multi-workload
"""

from __future__ import annotations

import copy
import os
from typing import Any, Iterable, Mapping, Sequence

from repro.api.registry import get_evaluator
from repro.api.types import DesignRequest, EvalResult, SchemaVersionError
from repro.cost.model import CostModel, CostParams
from repro.explore.engine import EvaluationEngine, EvaluationResult, MemoCache
from repro.ir import workloads as workload_lib
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["Session"]


class Session:
    """One configured evaluation context: array + cache + worker pool.

    Parameters mirror :class:`~repro.explore.engine.EvaluationEngine` —
    ``array``/``width``/``cost_params``/``sram_words`` describe the platform,
    ``workers``/``chunk_size`` the process pool, ``cache`` the memo cache
    (a :class:`MemoCache`, a JSON path, or ``None`` to disable memoization).
    ``perf``/``cost`` accept pre-built custom models for the engine paths.

    ``autoflush`` (default ``True``) persists the on-disk cache after every
    :meth:`evaluate` — right for one-shot/CLI use.  Tight evaluation loops
    over a large cache should pass ``autoflush=False`` and rely on
    :meth:`flush` / the context manager, which writes once at the end
    instead of rewriting the file per call.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        *,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        perf: PerfModel | None = None,
        cost: CostModel | None = None,
        workers: int = 0,
        chunk_size: int = 32,
        cache: MemoCache | str | os.PathLike | None = None,
        autoflush: bool = True,
    ):
        if perf is not None and array is None:
            array = perf.config
        self.array = array or ArrayConfig()
        self.width = width
        self.cost_params = cost_params
        self.sram_words = sram_words
        self.workers = workers
        self.chunk_size = chunk_size
        if isinstance(cache, (str, os.PathLike)):
            cache = MemoCache(cache)
        self.cache = cache
        self.autoflush = autoflush
        self._perf_override = perf
        self._cost_override = cost
        self._engine: EvaluationEngine | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    def flush(self) -> None:
        """Persist the memo cache (no-op when memoization is off)."""
        if self.cache is not None:
            self.cache.flush()

    def cache_stats(self) -> dict[str, int]:
        """Per-section entry counts and hit/miss counters (empty when off)."""
        return self.cache.stats() if self.cache is not None else {}

    # -- the engine behind explore()/sweep() ----------------------------
    @property
    def engine(self) -> EvaluationEngine:
        """The lazily built design-space engine sharing this session's cache."""
        if self._engine is None:
            self._engine = EvaluationEngine(
                self.array,
                width=self.width,
                cost_params=self.cost_params,
                sram_words=self.sram_words,
                perf=self._perf_override,
                cost=self._cost_override,
                workers=self.workers,
                chunk_size=self.chunk_size,
                cache=self.cache,
            )
        return self._engine

    # -- single-design evaluation ---------------------------------------
    def request(
        self,
        workload: str,
        dataflow: str | None = None,
        *,
        backend: str = "perf",
        extents: Mapping[str, int] | None = None,
        selection: Sequence[str] | None = None,
        stt: Sequence[Sequence[int]] | None = None,
        options: Mapping[str, Any] | None = None,
        array: ArrayConfig | None = None,
        width: int | None = None,
        cost: CostParams | None = None,
        sram_words: int | None = None,
    ) -> DesignRequest:
        """Build a :class:`DesignRequest`, filling defaults from the session."""
        return DesignRequest(
            workload=workload,
            dataflow=dataflow,
            selection=tuple(selection) if selection is not None else None,
            stt=tuple(tuple(row) for row in stt) if stt is not None else None,
            backend=backend,
            extents=dict(extents or {}),
            array=array or self.array,
            width=self.width if width is None else width,
            cost=cost if cost is not None else self.cost_params,
            sram_words=self.sram_words if sram_words is None else sram_words,
            options=dict(options or {}),
        )

    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult:
        """Evaluate one design through the backend registry, memoized.

        Accepts a ready :class:`DesignRequest` (self-contained: its own
        array/width/cost are honored) or the convenience form
        ``evaluate("gemm", "MNK-SST", backend="cost", ...)`` which builds one
        with session defaults.  The result is served from the memo cache when
        an identical request was evaluated before — for *any* backend, which
        is what extends memoization to the FPGA model and the simulator.
        """
        if not isinstance(request, DesignRequest):
            request = self.request(request, dataflow, **request_kwargs)
        elif dataflow is not None or request_kwargs:
            raise TypeError(
                "pass either a DesignRequest or workload/dataflow arguments, not both"
            )
        key = request.cache_key()
        if self.cache is not None:
            stored = self.cache.get("api", key)
            if stored is not None:
                try:
                    # deep-copy so caller mutations of the returned result
                    # can never reach back into the cache's own dicts
                    hit = EvalResult.from_dict(copy.deepcopy(stored))
                except (SchemaVersionError, ValueError, TypeError, KeyError):
                    # stale entry from another schema/build: degrade to a
                    # miss and overwrite, same contract as a corrupt file
                    pass
                else:
                    hit.cached = True
                    return hit
        result = get_evaluator(request.backend).evaluate(request)
        # Successes and resolve-stage failures are deterministic facts about
        # the design space (and resolve failures cost a full STT walk), so
        # both memoize.  Backend-stage failures do not: a sim mismatch or a
        # model rejection may be a bug fixed by the next build, and the cache
        # key carries no code version — recompute rather than pin the past.
        cacheable = result.ok or result.failure_stage == "resolve"
        if self.cache is not None and cacheable:
            payload = result.to_dict()  # to_dict deep-copies the payload
            payload["cached"] = False
            self.cache.put("api", key, payload)
            if self.autoflush:
                self.cache.flush()
        return result

    # -- design-space exploration ---------------------------------------
    def explore(self, workload: Statement | str, **evaluate_kwargs) -> EvaluationResult:
        """Run the full enumerate -> prune -> evaluate pipeline for one workload.

        ``workload`` may be a Table II name or a ready
        :class:`~repro.ir.einsum.Statement`; keyword arguments pass through to
        :meth:`EvaluationEngine.evaluate` (``selections``, ``one_d_only``,
        ``predicates``, ``workers`` ...).
        """
        statement = (
            workload_lib.by_name(workload) if isinstance(workload, str) else workload
        )
        return self.engine.evaluate(statement, **evaluate_kwargs)

    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **evaluate_kwargs,
    ) -> list[EvaluationResult]:
        """Run the pipeline over ``workloads`` x array ``configs`` (shared cache)."""
        return self.engine.sweep(workloads, configs=configs, **evaluate_kwargs)

    def evaluate_names(
        self,
        statement: Statement | str,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ):
        """Evaluate paper dataflow names (best STT per name), memoized."""
        if isinstance(statement, str):
            statement = workload_lib.by_name(statement)
        return self.engine.evaluate_names(statement, names, bound=bound, limit=limit)

    def iter_space(self, statement: Statement, **kwargs) -> Iterable:
        """Stream the pruned design space (see :meth:`EvaluationEngine.iter_space`)."""
        return self.engine.iter_space(statement, **kwargs)

    def __repr__(self) -> str:
        cached = "none" if self.cache is None else f"{len(self.cache)} entries"
        return (
            f"Session({self.array.rows}x{self.array.cols} @ "
            f"{self.array.freq_mhz:g} MHz, width={self.width}, "
            f"workers={self.workers}, cache={cached})"
        )
