"""The in-process session — the reference :class:`SessionProtocol` implementation.

A session owns the three things every consumer used to wire up by hand:

- **backend selection** — ``evaluate()`` routes requests through the
  evaluator registry, so cost/perf/FPGA/simulation all answer to one call;
- **the memo cache** — one two-level :class:`~repro.explore.engine.MemoCache`
  shared by single-design requests (``api`` section, keying *every* backend
  including FPGA Table III and the functional simulator) and by the
  design-space engine (``points``/``spaces``/``names`` sections);
- **the worker pool** — ``explore()``/``sweep()`` delegate to one lazily
  built :class:`~repro.explore.engine.EvaluationEngine` configured with the
  session's process-pool settings, and ``evaluate_many()`` batches *any*
  backend mix over the same pool settings.

``Session`` remains as a compatible alias of :class:`LocalSession`; code that
should be location-transparent takes a
:class:`~repro.api.protocol.SessionProtocol` instead and also accepts the
HTTP-speaking :class:`~repro.service.client.RemoteSession`.

Usage::

    from repro.api import LocalSession

    with LocalSession(array=ArrayConfig(rows=16, cols=16), cache="dse.json") as s:
        r = s.evaluate("gemm", "MNK-SST")                  # perf backend
        c = s.evaluate("gemm", "MNK-SST", backend="cost")  # same front door
        batch = s.evaluate_many([s.request("gemm", "MNK-SST", backend=b)
                                 for b in ("perf", "cost", "fpga")])
        result = s.explore("gemm")                         # full design space
        results = s.sweep(["gemm", "depthwise_conv"])      # multi-workload
"""

from __future__ import annotations

import copy
import os
from typing import Any, Iterable, Mapping, Sequence

from repro.api.protocol import SessionBase
from repro.api.registry import get_evaluator
from repro.api.types import DesignRequest, EvalResult, SchemaVersionError
from repro.cost.model import CostModel, CostParams
from repro.explore.engine import EvaluationEngine, EvaluationResult, MemoCache
from repro.ir import workloads as workload_lib
from repro.ir.einsum import Statement
from repro.perf.model import ArrayConfig, PerfModel

__all__ = ["LocalSession", "Session"]

def _pool_safe(request: DesignRequest) -> bool:
    """May this request travel to a process-pool worker?

    A spawned worker re-imports a *fresh* registry holding only the
    built-ins, so a request is pool-safe only when its backend name still
    resolves to the built-in evaluator class here — a backend registered (or
    a built-in *overridden*) at runtime must stay on the in-process path or
    the worker would silently answer with the wrong evaluator.
    """
    from repro.api.backends import BUILTIN_EVALUATORS

    builtin = BUILTIN_EVALUATORS.get(request.backend)
    return builtin is not None and type(get_evaluator(request.backend)) is builtin


def _evaluate_request_chunk(payloads: list[dict]) -> list[dict]:
    """Pool worker: evaluate a chunk of serialized requests, in order.

    Wire format in *and* out (``DesignRequest``/``EvalResult`` dicts): the
    payloads are already canonical JSON-safe structures, so pooled results
    are byte-identical to in-process ones after ``from_dict``.
    """
    results = []
    for payload in payloads:
        request = DesignRequest.from_dict(payload)
        results.append(get_evaluator(request.backend).evaluate(request).to_dict())
    return results


class LocalSession(SessionBase):
    """One configured in-process evaluation context: array + cache + pool.

    Parameters mirror :class:`~repro.explore.engine.EvaluationEngine` —
    ``array``/``width``/``cost_params``/``sram_words`` describe the platform,
    ``workers``/``chunk_size`` the process pool, ``cache`` the memo cache
    (a :class:`MemoCache`, a JSON path, or ``None`` to disable memoization).
    ``perf``/``cost`` accept pre-built custom models for the engine paths.

    ``autoflush`` (default ``True``) persists the on-disk cache after every
    :meth:`evaluate` — right for one-shot/CLI use.  Tight evaluation loops
    over a large cache should pass ``autoflush=False`` and rely on
    :meth:`flush` / the context manager, which writes once at the end
    instead of rewriting the file per call.
    """

    def __init__(
        self,
        array: ArrayConfig | None = None,
        *,
        width: int = 16,
        cost_params: CostParams | None = None,
        sram_words: int = 32768,
        perf: PerfModel | None = None,
        cost: CostModel | None = None,
        workers: int = 0,
        chunk_size: int = 32,
        cache: MemoCache | str | os.PathLike | None = None,
        autoflush: bool = True,
    ):
        if perf is not None and array is None:
            array = perf.config
        super().__init__(
            array, width=width, cost_params=cost_params, sram_words=sram_words
        )
        self.workers = workers
        self.chunk_size = chunk_size
        if isinstance(cache, (str, os.PathLike)):
            cache = MemoCache(cache)
        self.cache = cache
        self.autoflush = autoflush
        self._perf_override = perf
        self._cost_override = cost
        self._engine: EvaluationEngine | None = None

    # -- lifecycle -----------------------------------------------------
    def flush(self) -> None:
        """Persist the memo cache (no-op when memoization is off)."""
        if self.cache is not None:
            self.cache.flush()

    def cache_stats(self) -> dict[str, int]:
        """Per-section entry counts and hit/miss counters (empty when off)."""
        return self.cache.stats() if self.cache is not None else {}

    # -- the engine behind explore()/sweep() ----------------------------
    @property
    def engine(self) -> EvaluationEngine:
        """The lazily built design-space engine sharing this session's cache."""
        if self._engine is None:
            self._engine = EvaluationEngine(
                self.array,
                width=self.width,
                cost_params=self.cost_params,
                sram_words=self.sram_words,
                perf=self._perf_override,
                cost=self._cost_override,
                workers=self.workers,
                chunk_size=self.chunk_size,
                cache=self.cache,
                autoflush=self.autoflush,
            )
        return self._engine

    def engine_for(self, array: ArrayConfig | None) -> EvaluationEngine:
        """The engine for ``array`` (this session's, or a cache-sharing sibling)."""
        if array is None or array == self.array:
            return self.engine
        return self.engine._sibling(array)

    # -- single-design evaluation ---------------------------------------
    def evaluate(
        self,
        request: DesignRequest | str,
        dataflow: str | None = None,
        **request_kwargs,
    ) -> EvalResult:
        """Evaluate one design through the backend registry, memoized.

        Accepts a ready :class:`DesignRequest` (self-contained: its own
        array/width/cost are honored) or the convenience form
        ``evaluate("gemm", "MNK-SST", backend="cost", ...)`` which builds one
        with session defaults.  The result is served from the memo cache when
        an identical request was evaluated before — for *any* backend, which
        is what extends memoization to the FPGA model and the simulator.
        """
        request = self._coerce_request(request, dataflow, request_kwargs)
        key = request.cache_key()
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        result = get_evaluator(request.backend).evaluate(request)
        self._memo_put(key, result)
        if self.cache is not None and self.autoflush:
            self.cache.flush()
        return result

    def evaluate_many(
        self,
        requests: Sequence[DesignRequest | Mapping[str, Any]],
        *,
        workers: int | None = None,
    ) -> list[EvalResult]:
        """Evaluate a batch of requests, any backend mix, one result each.

        The batch primitive behind the service's ``/v1/evaluate_many``: every
        request is first probed against the memo cache (a warm batch costs no
        model time at all), duplicate requests within the batch evaluate
        once, and the remaining misses run through the engine's process-pool
        settings (``workers``/``chunk_size``) — for *all* built-in backends,
        cost/perf/fpga/sim alike, not just the engine paths.  Results come
        back in request order; backends registered at runtime stay on the
        in-process path (a spawned worker would not know them).
        """
        reqs = self._coerce_requests(requests)
        workers = self.workers if workers is None else workers
        results: list[EvalResult | None] = [None] * len(reqs)

        # memo probe + within-batch dedup: key -> list of result slots
        pending: dict[str, list[int]] = {}
        pending_request: dict[str, DesignRequest] = {}
        for i, request in enumerate(reqs):
            key = request.cache_key()
            if key in pending:
                pending[key].append(i)
                continue
            hit = self._memo_get(key)
            if hit is not None:
                results[i] = hit
            else:
                pending[key] = [i]
                pending_request[key] = request

        pooled, inline = [], []
        for key, request in pending_request.items():
            (pooled if _pool_safe(request) else inline).append(key)
        computed: dict[str, EvalResult] = {}

        if workers > 1 and len(pooled) > 1:
            from concurrent.futures import ProcessPoolExecutor

            payloads = [pending_request[key].to_dict() for key in pooled]
            chunks = [
                payloads[i : i + self.chunk_size]
                for i in range(0, len(payloads), self.chunk_size)
            ]
            max_workers = min(workers, len(chunks))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                outcomes: list[dict] = []
                for chunk_results in pool.map(_evaluate_request_chunk, chunks):
                    outcomes.extend(chunk_results)
            for key, payload in zip(pooled, outcomes):
                computed[key] = EvalResult.from_dict(payload)
        else:
            inline = pooled + inline

        for key in inline:
            computed[key] = get_evaluator(pending_request[key].backend).evaluate(
                pending_request[key]
            )

        for key, result in computed.items():
            self._memo_put(key, result)
            slots = pending[key]
            results[slots[0]] = result
            for i in slots[1:]:
                # duplicates get detached copies: callers may mutate results
                results[i] = copy.deepcopy(result)
        if self.cache is not None and self.autoflush and computed:
            self.cache.flush()
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- memoization helpers ---------------------------------------------
    def _memo_get(self, key: str) -> EvalResult | None:
        """A detached cache hit (``cached=True``) or ``None`` on a miss."""
        if self.cache is None:
            return None
        stored = self.cache.get("api", key)
        if stored is None:
            return None
        try:
            # deep-copy so caller mutations of the returned result
            # can never reach back into the cache's own dicts
            hit = EvalResult.from_dict(copy.deepcopy(stored))
        except (SchemaVersionError, ValueError, TypeError, KeyError):
            # stale entry from another schema/build: degrade to a
            # miss and overwrite, same contract as a corrupt file
            return None
        hit.cached = True
        return hit

    def _memo_put(self, key: str, result: EvalResult) -> None:
        # Successes and resolve-stage failures are deterministic facts about
        # the design space (and resolve failures cost a full STT walk), so
        # both memoize.  Backend-stage failures do not: a sim mismatch or a
        # model rejection may be a bug fixed by the next build, and the cache
        # key carries no code version — recompute rather than pin the past.
        cacheable = result.ok or result.failure_stage == "resolve"
        if self.cache is not None and cacheable:
            payload = result.to_dict()  # to_dict deep-copies the payload
            payload["cached"] = False
            self.cache.put("api", key, payload)

    # -- design-space exploration ---------------------------------------
    def explore(
        self,
        workload: Statement | str,
        *,
        array: ArrayConfig | None = None,
        extents: Mapping[str, int] | None = None,
        **evaluate_kwargs,
    ) -> EvaluationResult:
        """Run the full enumerate -> prune -> evaluate pipeline for one workload.

        ``workload`` may be a Table II name (with optional loop ``extents``
        overrides) or a ready :class:`~repro.ir.einsum.Statement`; ``array``
        overrides the session's platform for this run (sharing the memo
        cache); other keyword arguments pass through to
        :meth:`EvaluationEngine.evaluate` (``selections``, ``one_d_only``,
        ``predicates``, ``workers`` ...).
        """
        if isinstance(workload, str):
            statement = workload_lib.by_name(workload, **(extents or {}))
        elif extents:
            raise TypeError("pass extents only with a workload name, not a Statement")
        else:
            statement = workload
        return self.engine_for(array).evaluate(statement, **evaluate_kwargs)

    def sweep(
        self,
        workloads: Sequence[Statement | str],
        configs: Sequence[ArrayConfig] | None = None,
        **evaluate_kwargs,
    ) -> list[EvaluationResult]:
        """Run the pipeline over ``workloads`` x array ``configs`` (shared cache)."""
        return self.engine.sweep(workloads, configs=configs, **evaluate_kwargs)

    def evaluate_names(
        self,
        statement: Statement | str,
        names: Sequence[str],
        *,
        bound: int = 1,
        limit: int = 24,
    ):
        """Evaluate paper dataflow names (best STT per name), memoized."""
        if isinstance(statement, str):
            statement = workload_lib.by_name(statement)
        return self.engine.evaluate_names(statement, names, bound=bound, limit=limit)

    def iter_space(self, statement: Statement, **kwargs) -> Iterable:
        """Stream the pruned design space (see :meth:`EvaluationEngine.iter_space`)."""
        return self.engine.iter_space(statement, **kwargs)

    def __repr__(self) -> str:
        cached = "none" if self.cache is None else f"{len(self.cache)} entries"
        return (
            f"{type(self).__name__}({self.array.rows}x{self.array.cols} @ "
            f"{self.array.freq_mhz:g} MHz, width={self.width}, "
            f"workers={self.workers}, cache={cached})"
        )


#: Compatible alias: ``Session`` predates the local/remote split.
Session = LocalSession
