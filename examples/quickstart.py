"""Quickstart: generate, inspect, verify and evaluate an accelerator.

The classic output-stationary systolic GEMM array (paper dataflow MNK-SST),
in six steps:

1. describe the kernel as a perfect loop nest,
2. pick a dataflow by name (an STT matrix is searched automatically),
3. generate the complete hardware (PEs, interconnect, controller, memory),
4. emit Verilog,
5. run the generated netlist on real data and compare against numpy,
6. evaluate the same design through the unified `repro.api.Session` facade
   (performance and area/power through one call convention).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Session
from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.sim.harness import FunctionalHarness


def main() -> None:
    # 1. The kernel: C[m,n] += A[m,k] * B[n,k]
    gemm = workloads.gemm(m=8, n=8, k=8)
    print(f"workload: {gemm.name}, {gemm.macs()} MACs, loops {gemm.space.names}")

    # 2. The dataflow: map (m, n) across the PE array, run k over time,
    #    keep C stationary in each PE while A and B flow systolically.
    spec = naming.spec_from_name(gemm, "MNK-SST")
    print(f"dataflow {spec.name}: STT matrix rows {spec.stt.matrix}")
    for flow in spec.flows:
        print(f"  {flow}")

    # 3. Generate a 4x4 accelerator.
    design = AcceleratorGenerator(spec, rows=4, cols=4).generate()
    cells = design.top.cell_count()
    print(
        f"generated {design.name}: {cells['mul']} multipliers, "
        f"{cells['reg']} registers, {len(design.array.instances)} PEs"
    )
    print(f"stage schedule: {design.timing}")

    # 4. Verilog.
    verilog = design.verilog()
    print(f"emitted {verilog.count(chr(10))} lines of Verilog; PE module head:")
    pe_start = verilog.index("module pe (")
    print("\n".join(verilog[pe_start:].splitlines()[:10]))

    # 5. Simulate the netlist cycle by cycle against the numpy reference.
    harness = FunctionalHarness(spec, rows=4, cols=4, design=design)
    a = np.arange(64, dtype=np.int64).reshape(8, 8) % 7 - 3
    b = np.arange(64, dtype=np.int64).reshape(8, 8) % 5 - 2
    out = harness.run({"A": a, "B": b})
    np.testing.assert_array_equal(out, a @ b.T)
    print(
        f"netlist simulation matched numpy over {harness.cycles_run} cycles "
        f"({design.plan.n_stages()} stages). All good."
    )

    # 6. Evaluate the same named design through the unified API facade:
    #    every backend (perf, cost, fpga, sim) answers the same call.
    session = Session()
    perf = session.evaluate("gemm", "MNK-SST", extents={"m": 8, "n": 8, "k": 8})
    cost = session.evaluate(
        "gemm", "MNK-SST", backend="cost", extents={"m": 8, "n": 8, "k": 8}
    )
    print(
        f"Session.evaluate: {perf['normalized_perf']:.1%} of peak on a 16x16 array, "
        f"{cost['area_mm2']:.3f} mm^2, {cost['power_mw']:.1f} mW"
    )


if __name__ == "__main__":
    main()
