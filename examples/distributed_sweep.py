"""Distributed sweeps: one session surface, a whole fleet of servers.

``CoordinatedSession`` speaks the same ``SessionProtocol`` as a
``LocalSession``, but its ``sweep()`` shards the workload x config grid
across every ``repro serve`` instance it was given: each (config, workload)
pair rides the job API of one server, dead servers forfeit their shards to
the survivors, servers without job capacity get their shards as chunked
``evaluate_many`` batches — and the folded answer is bit-identical to
running everything in-process.

This walkthrough stands up two real services on background threads (the
in-process stand-in for two ``python -m repro.cli serve`` machines), runs a
coordinated sweep, kills one server, sweeps again on the survivor, and
checks every fold against a plain ``LocalSession``.

Run:  python examples/distributed_sweep.py
"""

from repro.api import LocalSession
from repro.perf.model import ArrayConfig
from repro.service import CoordinatedSession, ServiceThread

ARRAY = ArrayConfig(rows=16, cols=16)
GRID = dict(
    workloads=["gemm", "batched_gemv"],
    configs=[ARRAY, ArrayConfig(rows=8, cols=8)],
)
SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])


def digest(results) -> list:
    return [
        (r.workload, r.array.rows, [p.metrics() for p in r]) for r in results
    ]


def main() -> None:
    print("== reference: one in-process LocalSession ==")
    local = LocalSession(ARRAY).sweep(GRID["workloads"], GRID["configs"], **SWEEP_KW)
    print(f"  {len(local)} results, {sum(len(r) for r in local)} design points")

    with ServiceThread(LocalSession(ARRAY)) as node_a:
        with ServiceThread(LocalSession(ARRAY)) as node_b:
            print(f"\n== coordinated: {node_a.url} + {node_b.url} ==")
            session = CoordinatedSession([node_a.url, node_b.url], array=ARRAY)
            results = session.sweep(GRID["workloads"], GRID["configs"], **SWEEP_KW)
            print(f"  report: {session.coordinator.last_report}")
            assert digest(results) == digest(local), "distribution leaked!"
            print("  fold identical to the local sweep")

            print("\n== one server dies; the fleet keeps answering ==")
            node_b.stop()
            survivors = CoordinatedSession([node_b.url, node_a.url], array=ARRAY)
            results = survivors.sweep(GRID["workloads"], GRID["configs"], **SWEEP_KW)
            report = survivors.coordinator.last_report
            print(f"  report: {report}")
            assert report["servers_lost"] == 1
            assert digest(results) == digest(local)
            print("  dead server's shards reassigned; fold still identical")
            survivors.close()
            session.close()

    print("\ndistribution is invisible in the results — only in the wall clock")


if __name__ == "__main__":
    main()
