"""Design-space exploration: the paper's headline workflow.

Enumerates every realizable GEMM dataflow for a 16x16 INT16 array (paper
Fig. 6 reports 148 such designs), evaluates performance, area and power, and
prints the Pareto frontier over (performance, power).

Run:  python examples/design_space_exploration.py
"""

from repro.explore import explore, pareto_front
from repro.ir import workloads


def main() -> None:
    gemm = workloads.gemm(1024, 1024, 1024)
    print("enumerating + evaluating the GEMM dataflow design space ...")
    points = explore(gemm, rows=16, cols=16, width=16)
    print(f"{len(points)} distinct realizable designs (paper: 148)\n")

    points.sort(key=lambda p: -p.normalized_perf)
    print(f"{'dataflow':<12} {'perf':>6} {'area mm2':>9} {'power mW':>9}")
    for pt in points[:10]:
        print(
            f"{pt.name:<12} {pt.normalized_perf:>5.1%} {pt.area_mm2:>9.3f} "
            f"{pt.power_mw:>9.1f}"
        )
    print("   ...")

    front = pareto_front(
        points,
        objectives=[lambda p: -p.normalized_perf, lambda p: p.power_mw],
    )
    front.sort(key=lambda p: p.power_mw)
    print(f"\nPareto frontier (maximize perf, minimize power): {len(front)} designs")
    for pt in front:
        print(
            f"  {pt.name:<12} perf={pt.normalized_perf:5.1%} "
            f"power={pt.power_mw:5.1f} mW area={pt.area_mm2:.3f} mm2"
        )

    hottest = max(points, key=lambda p: p.power_mw)
    coolest = min(points, key=lambda p: p.power_mw)
    print(
        f"\npower spread {coolest.power_mw:.1f} -> {hottest.power_mw:.1f} mW "
        f"({hottest.power_mw / coolest.power_mw:.2f}x; paper reports 1.8x), "
        f"hottest is {hottest.name} (double multicast input, as in the paper)"
    )


if __name__ == "__main__":
    main()
