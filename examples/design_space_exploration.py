"""Design-space exploration: the paper's headline workflow.

Runs the unified :class:`repro.api.Session` facade end to end: lazily
enumerates every realizable GEMM dataflow for a 16x16 INT16 array (paper
Fig. 6 reports 148 such designs), evaluates performance, area and power
through the memoized pipeline, reports any designs the models reject, and
prints the Pareto frontier over (performance, power).

Run:  python examples/design_space_exploration.py

Pass a path as the first argument to keep a warm on-disk memo cache, e.g.
``python examples/design_space_exploration.py /tmp/dse.json`` — the second
run then skips both enumeration and evaluation.  Caches from several
machines merge with ``python -m repro.cli cache merge``.
"""

import sys

from repro.api import Session
from repro.ir import workloads
from repro.perf.model import ArrayConfig


def main() -> None:
    cache = sys.argv[1] if len(sys.argv) > 1 else None
    session = Session(ArrayConfig(rows=16, cols=16), width=16, cache=cache)
    gemm = workloads.gemm(1024, 1024, 1024)
    print("enumerating + evaluating the GEMM dataflow design space ...")
    result = session.explore(gemm)
    print(f"{len(result)} distinct realizable designs (paper: 148)")
    print(f"pipeline: {result.stats.summary()}")
    if result.failures:
        print(result.failure_report())
    print()

    points = result.best(len(result))
    print(f"{'dataflow':<12} {'perf':>6} {'area mm2':>9} {'power mW':>9}")
    for pt in points[:10]:
        print(
            f"{pt.name:<12} {pt.normalized_perf:>5.1%} {pt.area_mm2:>9.3f} "
            f"{pt.power_mw:>9.1f}"
        )
    print("   ...")

    front = result.pareto()
    front.sort(key=lambda p: p.power_mw)
    print(f"\nPareto frontier (maximize perf, minimize power): {len(front)} designs")
    for pt in front:
        print(
            f"  {pt.name:<12} perf={pt.normalized_perf:5.1%} "
            f"power={pt.power_mw:5.1f} mW area={pt.area_mm2:.3f} mm2"
        )

    hottest = max(points, key=lambda p: p.power_mw)
    coolest = min(points, key=lambda p: p.power_mw)
    print(
        f"\npower spread {coolest.power_mw:.1f} -> {hottest.power_mw:.1f} mW "
        f"({hottest.power_mw / coolest.power_mw:.2f}x; paper reports 1.8x), "
        f"hottest is {hottest.name} (double multicast input, as in the paper)"
    )

    # The same session is the front door to every single-design backend —
    # perf, cost and the FPGA Table III model answer one call convention
    # (and share the same memo cache as the sweep above).
    print("\nunified front door (Session.evaluate, one design, three backends):")
    for backend in ("perf", "cost", "fpga"):
        r = session.evaluate(
            "gemm", "MNK-SST", backend=backend, extents={"m": 64, "n": 64, "k": 64}
        )
        print(f"  {r!r}")


if __name__ == "__main__":
    main()
