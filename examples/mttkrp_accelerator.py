"""MTTKRP: a three-input tensor kernel end to end.

MTTKRP (``D[i,j] += A[i,k,l] * B[k,j] * C[l,j]``) drives recommendation-
system tensor factorizations (paper §I).  Three input tensors exercise the
generator beyond matrix-multiply shapes: the PE compute cell chains two
multipliers, tensor C gets a 2-D reuse dataflow (bus + stationary), and the
paper's bandwidth warning about unicast dataflows shows up clearly.

Run:  python examples/mttkrp_accelerator.py
"""

import numpy as np

from repro.core import naming
from repro.hw.generator import AcceleratorGenerator
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel
from repro.sim.harness import FunctionalHarness


def main() -> None:
    # -- dataflow comparison at paper scale --------------------------------
    big = workloads.mttkrp(i=128, j=128, k=128, l=128)
    model = PerfModel(ArrayConfig())
    print("MTTKRP dataflows on a 16x16 array (normalized performance):")
    for name in ["IJK-SSBT", "IJK-SSBM", "IJL-SBTS", "IKL-UBBB"]:
        spec = naming.best_spec_from_name(
            big, name, lambda s: model.evaluate(s).normalized
        )
        r = model.evaluate(spec)
        note = "  <- unicast, bandwidth-bound" if r.bandwidth_stall > 2 else ""
        print(f"  {name:<10} {r.normalized:6.1%} stall={r.bandwidth_stall:4.1f}x{note}")

    # -- generate and verify the good one ----------------------------------
    small = workloads.mttkrp(i=4, j=4, k=4, l=3)
    spec = naming.spec_from_name(small, "IJK-SSBT")
    design = AcceleratorGenerator(spec, rows=4, cols=4).generate()
    cells = design.top.cell_count()
    print(
        f"\ngenerated {design.name}: {cells['mul']} multipliers "
        f"(2 per PE: three-tensor product), {cells['reg']} registers"
    )

    harness = FunctionalHarness(spec, rows=4, cols=4, design=design)
    inputs = small.random_inputs(np.random.default_rng(42))
    out = harness.run(inputs)
    expected = np.einsum("ikl,kj,lj->ij", inputs["A"], inputs["B"], inputs["C"])
    np.testing.assert_array_equal(out, expected)
    print(f"netlist matched numpy einsum over {harness.cycles_run} cycles.")


if __name__ == "__main__":
    main()
