"""Conv2D dataflow study on ResNet layers (paper Fig. 5 f/g workflow).

Compares classic convolution dataflows on an early (56x56) and a late (7x7)
ResNet layer, shows why GEMM-ized KCX selections win, then generates the
winning accelerator and functionally verifies a scaled-down instance.

Run:  python examples/conv2d_resnet.py
"""

from repro.core import naming
from repro.ir import workloads
from repro.perf.model import ArrayConfig, PerfModel
from repro.sim.harness import run_functional

DATAFLOWS = ["KCX-SST", "KCX-STS", "XPQ-MMT", "XYP-MST", "KPX-MST", "CPQ-UUB"]


def study(layer, model):
    print(f"\n{layer.name}: {layer.macs() / 1e6:.0f} M MACs")
    results = []
    for name in DATAFLOWS:
        spec = naming.best_spec_from_name(
            layer, name, lambda s: model.evaluate(s).normalized
        )
        r = model.evaluate(spec)
        results.append((name, r))
        bar = "#" * int(r.normalized * 40)
        print(f"  {name:<10} {r.normalized:6.1%} util={r.utilization:4.2f} {bar}")
    return max(results, key=lambda nr: nr[1].normalized)


def main() -> None:
    model = PerfModel(ArrayConfig())  # 16x16 PEs @ 320 MHz, 32 GB/s
    best2 = study(workloads.conv2d_resnet_layer2(), model)
    best5 = study(workloads.conv2d_resnet_layer5(), model)
    print(f"\nbest on layer 2: {best2[0]} ({best2[1].normalized:.1%})")
    print(f"best on layer 5: {best5[0]} ({best5[1].normalized:.1%})")
    print(
        "(paper: KCX selections deliver the best performance because conv\n"
        " becomes a large-bound GEMM; our model agrees on layer 5 and puts\n"
        " KCX within the top group on layer 2, far above the x/y/p-spatial\n"
        " dataflows that idle on communication delay)"
    )

    # Functionally verify the winning dataflow on a small conv instance.
    small = workloads.conv2d(k=4, c=4, y=4, x=4, p=3, q=3)
    spec = naming.spec_from_name(small, best2[0])
    run_functional(spec, rows=4, cols=4)
    print(f"\n{best2[0]} netlist verified against numpy on a 4x4 array.")


if __name__ == "__main__":
    main()
