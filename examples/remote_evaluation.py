"""Location-transparent evaluation: one protocol, local or remote.

Everything in this walkthrough is written against ``SessionProtocol`` —
the function ``characterize()`` below never knows whether it holds an
in-process ``LocalSession`` or an HTTP ``RemoteSession``.  The script runs
it both ways: first locally, then against a real evaluation service started
on a background thread (the in-process stand-in for
``python -m repro.cli serve``), and checks the answers agree.

Run:  python examples/remote_evaluation.py
"""

from repro.api import LocalSession, SessionProtocol
from repro.perf.model import ArrayConfig
from repro.service import RemoteSession, ServiceThread

ARRAY = ArrayConfig(rows=16, cols=16)


def characterize(session: SessionProtocol) -> dict:
    """A little characterization study, transport-unaware by construction."""
    # one batch, four backends, one round trip on a remote session
    requests = [
        session.request(
            "gemm", "MNK-SST", backend=backend,
            extents={"m": 64, "n": 64, "k": 64},
            options={"workload_label": "MM"} if backend == "fpga" else {},
        )
        for backend in ("perf", "cost", "fpga")
    ]
    perf, cost, fpga = session.evaluate_many(requests)

    # the design-space pipeline (NDJSON-streamed when remote)
    result = session.explore("gemm", selections=[("m", "n", "k")])
    frontier = sorted(result.pareto(), key=lambda p: p.power_mw)
    return {
        "normalized_perf": perf["normalized_perf"],
        "power_mw": cost["power_mw"],
        "fpga_freq_mhz": fpga["freq_mhz"],
        "designs": len(result),
        "frontier": [p.name for p in frontier],
    }


def main() -> None:
    print("== local session ==")
    local = characterize(LocalSession(ARRAY))
    for key, value in local.items():
        print(f"  {key}: {value}")

    print("\n== remote session (same code, over HTTP) ==")
    with ServiceThread(LocalSession(ARRAY)) as server:
        print(f"  service at {server.url}")
        with RemoteSession(server.url, array=ARRAY) as session:
            remote = characterize(session)
            for key, value in remote.items():
                print(f"  {key}: {value}")

            # the job API: queue a sweep, poll it to completion
            import time

            job = session.submit_job(["batched_gemv"], one_d_only=True)
            while job["status"] not in ("done", "failed", "cancelled"):
                time.sleep(0.05)
                job = session.job(job["id"])
            (row,) = job["results"]
            print(f"  job {job['id']}: {job['status']}, "
                  f"{row['points']} batched_gemv designs, "
                  f"pareto: {', '.join(row['pareto'])}")

    assert remote == local, "location transparency broke!"
    print("\nlocal and remote answers are identical")


if __name__ == "__main__":
    main()
