"""End-to-end smoke test of the sweep coordinator, as CI runs it.

Starts **two** real ``repro serve`` subprocesses on ephemeral ports, runs a
coordinated workload x config sweep through
:class:`~repro.service.coordinator.SweepCoordinator`, and SIGKILLs one
server the moment its first job streams a row — the pipelined consumer dies
with the long-poll connection OPEN, mid-shard.  The coordinator must notice
the dead server at once, reassign its in-flight work to the survivor, and
still fold results **bit-identical** to a plain in-process
``LocalSession.sweep()`` over the same grid.  Finally the survivor gets a
SIGINT and must exit 0 with the clean-shutdown banner.

Run:  PYTHONPATH=src python scripts/coordinator_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

SWEEP_KW = dict(one_d_only=True, selections=[("m", "n", "k")])
WORKLOADS = ["gemm", "batched_gemv"]


def start_server(env) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--rows", "8", "--cols", "8"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    assert match, f"no service URL in banner: {banner!r}"
    return proc, match.group(0)


def main() -> int:
    sys.path.insert(0, str(SRC))
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC)

    from repro.api import LocalSession
    from repro.perf.model import ArrayConfig
    from repro.service import RemoteSession, SweepCoordinator

    array = ArrayConfig(rows=8, cols=8)
    configs = [array, ArrayConfig(rows=4, cols=4)]

    victim, victim_url = start_server(env)
    survivor, survivor_url = start_server(env)
    print(f"servers up at {victim_url} (victim) and {survivor_url} (survivor)")

    class KillVictimOnFirstRow(RemoteSession):
        """SIGKILL the victim server the moment one of its jobs streams its
        first row — a real mid-sweep crash with the shard's long-poll
        connection open and its fold partially built."""

        armed = True

        def job_rows_async(self, job_id, **kwargs):
            import asyncio

            inner = super().job_rows_async(job_id, **kwargs)
            if self.url != victim_url:
                return inner

            async def wrapped():
                async for frame in inner:
                    if KillVictimOnFirstRow.armed and frame.get("row") in (
                        "point",
                        "failure",
                    ):
                        KillVictimOnFirstRow.armed = False

                        def kill():
                            victim.kill()
                            victim.wait(timeout=30)

                        await asyncio.get_running_loop().run_in_executor(None, kill)
                        print(
                            f"killed {victim_url} mid-stream "
                            f"(job {job_id} open, rows in flight)"
                        )
                    yield frame

            return wrapped()

    try:
        coordinator = SweepCoordinator(
            [victim_url, survivor_url],
            array=array,
            max_inflight=1,
            retries=1,
            backoff=0.05,
            session_factory=lambda url: KillVictimOnFirstRow(
                url, array=array, retries=1, backoff=0.05
            ),
        )
        results = coordinator.sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        report = coordinator.last_report
        print(f"coordinated sweep done: {report}")
        assert report["servers_lost"] == 1, report
        assert report["reassigned"] >= 1, report
        assert report["rows_streamed"] > 0, report
        assert not KillVictimOnFirstRow.armed, "the victim never streamed a row"

        local = LocalSession(array).sweep(WORKLOADS, configs=configs, **SWEEP_KW)
        assert [(r.workload, r.array) for r in results] == [
            (r.workload, r.array) for r in local
        ]
        assert [[(p.name, p.metrics()) for p in r] for r in results] == [
            [(p.name, p.metrics()) for p in r] for r in local
        ], "coordinated metrics differ from LocalSession.sweep()"
        assert [len(r.failures) for r in results] == [len(r.failures) for r in local]
        print(f"fold identical to local across {len(results)} results "
              f"({sum(len(r) for r in results)} points)")
        coordinator.close()
    finally:
        if victim.poll() is None:
            victim.kill()
        survivor.send_signal(signal.SIGINT)
        deadline = time.monotonic() + 30
        while survivor.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        if survivor.poll() is None:
            survivor.kill()
            raise AssertionError("survivor did not shut down within 30s of SIGINT")
    tail = survivor.stdout.read() if survivor.stdout else ""
    assert survivor.returncode == 0, f"survivor exited {survivor.returncode}: {tail}"
    assert "shutdown complete" in tail, f"no clean-shutdown banner: {tail!r}"
    print("survivor clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
