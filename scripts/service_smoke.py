"""End-to-end smoke test of the evaluation service, as CI runs it.

Starts a real ``repro serve`` subprocess on an ephemeral port, drives one
``evaluate_many`` batch and one NDJSON-streamed ``explore`` through
:class:`~repro.service.client.RemoteSession`, then sends SIGINT and asserts
the server shuts down cleanly (exit code 0, "shutdown complete" printed).

Run:  PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def main() -> int:
    sys.path.insert(0, str(SRC))
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--rows", "8", "--cols", "8"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no service URL in banner: {banner!r}"
        url = match.group(0)
        print(f"server up at {url}")

        from repro.service import RemoteSession

        session = RemoteSession(url)
        requests = [
            session.request("gemm", "MNK-SST", backend=backend,
                            extents={"m": 16, "n": 16, "k": 16})
            for backend in ("perf", "cost", "fpga")
        ]
        results = session.evaluate_many(requests)
        assert [r.backend for r in results] == ["perf", "cost", "fpga"]
        assert all(r.ok for r in results), results
        print(f"evaluate_many ok: {len(results)} results")

        result = session.explore(
            "gemm", extents={"m": 64, "n": 64, "k": 64},
            selections=[("m", "n", "k")],
        )
        assert len(result) > 20, result.stats.summary()
        print(f"streamed explore ok: {len(result)} points "
              f"({result.stats.summary()})")
        session.close()
    finally:
        proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + 30
        while proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.1)
        if proc.poll() is None:
            proc.kill()
            raise AssertionError("server did not shut down within 30s of SIGINT")
    tail = proc.stdout.read() if proc.stdout else ""
    assert proc.returncode == 0, f"server exited {proc.returncode}: {tail}"
    assert "shutdown complete" in tail, f"no clean-shutdown banner: {tail!r}"
    print("clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
