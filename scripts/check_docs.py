#!/usr/bin/env python3
"""Docs checker: links must resolve, fenced Python snippets must compile.

Scans ``README.md`` and every ``docs/*.md`` for

1. **Markdown links** — relative targets must point at files/directories
   that exist in the repo, and ``#anchor`` fragments (same-file or
   cross-file) must match a real heading's GitHub-style slug.  External
   (``http``/``https``/``mailto``) targets are skipped — this checker
   never touches the network.
2. **Fenced code blocks** — every ```` ```python ```` block is extracted
   into a snippets directory (one ``.py`` file each, default a temp dir)
   and run through ``compileall`` — docs that show Python must at least
   show *syntactically valid* Python.  Other fence languages (``bash``,
   ``json``, diagrams) are left alone.

CI runs this as the ``docs`` job; locally::

    python scripts/check_docs.py
    python scripts/check_docs.py --snippets-dir build/docs-snippets  # keep them

Exit code 0 when everything resolves and compiles, 1 otherwise (every
problem is listed, not just the first).
"""

from __future__ import annotations

import argparse
import compileall
import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^```(\S*)\s*$")


def _rel(path: Path) -> Path:
    """Repo-relative for display; absolute when outside the repo (tests)."""
    try:
        return path.relative_to(REPO)
    except ValueError:
        return path


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def slugify(heading: str) -> str:
    """A heading's GitHub-style anchor slug (close enough for our docs)."""
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.ASCII)
    return text.replace(" ", "-")


def split_markdown(text: str) -> tuple[list[str], list[tuple[str, str]]]:
    """Split a document into (prose lines, fenced blocks).

    Prose is everything outside code fences — the only place links and
    headings are looked for, so shell snippets full of brackets can never
    produce false link errors.  Each fenced block comes back as a
    ``(language, code)`` pair.
    """
    prose: list[str] = []
    blocks: list[tuple[str, str]] = []
    language: str | None = None
    body: list[str] = []
    for line in text.splitlines():
        fence = FENCE_RE.match(line)
        if fence and language is None:
            language = fence.group(1).lower()
            body = []
        elif line.strip() == "```" and language is not None:
            blocks.append((language, "\n".join(body) + "\n"))
            language = None
        elif language is not None:
            body.append(line)
        else:
            prose.append(line)
    return prose, blocks


def heading_slugs(path: Path) -> set[str]:
    prose, _ = split_markdown(path.read_text())
    return {
        slugify(match.group(1))
        for line in prose
        if (match := HEADING_RE.match(line))
    }


def check_links(files: list[Path]) -> list[str]:
    errors: list[str] = []
    slug_cache: dict[Path, set[str]] = {}

    def slugs(path: Path) -> set[str]:
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    for doc in files:
        prose, _ = split_markdown(doc.read_text())
        for number, line in enumerate(prose, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                where = f"{_rel(doc)}:{number}"
                path_part, _, anchor = target.partition("#")
                resolved = doc if not path_part else (doc.parent / path_part)
                if not resolved.exists():
                    errors.append(f"{where}: broken link target {target!r}")
                    continue
                if anchor and resolved.suffix == ".md":
                    if anchor not in slugs(resolved):
                        errors.append(
                            f"{where}: no heading {('#' + anchor)!r} "
                            f"in {_rel(resolved)}"
                        )
    return errors


def extract_snippets(files: list[Path], snippets_dir: Path) -> int:
    """Write every fenced ```python block to ``snippets_dir``; returns count."""
    snippets_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for doc in files:
        _, blocks = split_markdown(doc.read_text())
        for language, code in blocks:
            if language not in ("python", "py"):
                continue
            count += 1
            name = f"{doc.stem.lower()}_{count:03d}.py"
            (snippets_dir / name).write_text(
                f"# extracted from {_rel(doc)}\n{code}"
            )
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snippets-dir",
        metavar="DIR",
        help="extract fenced python blocks here (default: a temp dir)",
    )
    args = parser.parse_args(argv)

    files = doc_files()
    errors = check_links(files)

    if args.snippets_dir:
        snippets_dir = Path(args.snippets_dir)
        count = extract_snippets(files, snippets_dir)
        compiled = compileall.compile_dir(str(snippets_dir), quiet=1)
    else:
        with tempfile.TemporaryDirectory(prefix="docs-snippets-") as tmp:
            snippets_dir = Path(tmp)
            count = extract_snippets(files, snippets_dir)
            compiled = compileall.compile_dir(str(snippets_dir), quiet=1)
    if not compiled:
        errors.append(
            f"python snippet(s) in {snippets_dir} failed to compile (see above)"
        )

    checked = ", ".join(str(_rel(f)) for f in files)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        print(f"docs check FAILED: {len(errors)} problem(s) in {checked}",
              file=sys.stderr)
        return 1
    print(f"docs check OK: links resolve and {count} python snippet(s) "
          f"compile across {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
