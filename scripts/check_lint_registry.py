#!/usr/bin/env python3
"""Registry-drift gate: checkers, SARIF rules, and the docs catalog agree.

The analysis pass has three views of "which checkers exist":

1. the code registry — ``repro.analysis.checkers.ALL_CHECKERS``;
2. the SARIF ``rules`` table emitted for GitHub code scanning
   (``repro.analysis.sarif._rules``), which must advertise exactly the
   registered checkers or code-scanning alerts point at ghost rules;
3. the checker catalog table in ``docs/development.md``, which is what a
   developer deciding whether to waive a finding actually reads.

Adding a checker and forgetting one of the three is silent drift until a
human trips over it, so CI runs this after ``repro lint``.  On
disagreement the exit code is 1 and the diff names every side: which ids
are code-only, docs-only, or missing from SARIF — readable enough to fix
from the message alone.

Locally::

    PYTHONPATH=src python scripts/check_lint_registry.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: catalog rows look like ``| `RA008` | wire-taint | ... |``; the RA000
#: pragma row counts — it renders in SARIF findings too (malformed waivers).
_DOC_ROW_RE = re.compile(r"^\|\s*`(RA\d{3})`\s*\|", re.MULTILINE)


def checker_ids() -> set[str]:
    from repro.analysis.checkers import ALL_CHECKERS

    return {checker.id for checker in ALL_CHECKERS}


def sarif_rule_ids() -> set[str]:
    from repro.analysis.sarif import _rules

    return {rule["id"] for rule in _rules()}


def docs_catalog_ids(docs_path: Path) -> set[str]:
    return set(_DOC_ROW_RE.findall(docs_path.read_text()))


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs",
        type=Path,
        default=REPO / "docs" / "development.md",
        help="catalog file to check (tests point this at doctored copies)",
    )
    args = parser.parse_args(argv)

    code = checker_ids()
    sarif = sarif_rule_ids()
    docs = docs_catalog_ids(args.docs)
    # RA000 is not a checker class (waiver scanning lives in the runner),
    # but it emits findings, so docs and SARIF must still cover it
    emitted = code | {"RA000"}

    problems: list[str] = []
    for missing in sorted(emitted - sarif):
        problems.append(
            f"{missing}: registered in ALL_CHECKERS but absent from the "
            "SARIF rules table — its code-scanning alerts would point at a "
            "ghost rule (fix repro/analysis/sarif.py)"
        )
    for ghost in sorted(sarif - emitted):
        problems.append(
            f"{ghost}: advertised in the SARIF rules table but not a "
            "registered checker — remove it or register the checker"
        )
    for missing in sorted(emitted - docs):
        problems.append(
            f"{missing}: registered in ALL_CHECKERS but missing a catalog "
            "row in docs/development.md — document it before shipping it"
        )
    for ghost in sorted(docs - emitted):
        problems.append(
            f"{ghost}: documented in docs/development.md but not a "
            "registered checker — stale row, or the registration was lost"
        )

    if problems:
        print("lint registry drift:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print(
            f"\n  code={sorted(emitted)}\n  sarif={sorted(sarif)}\n"
            f"  docs={sorted(docs)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"lint registry consistent: {len(emitted)} rule(s) "
        f"({', '.join(sorted(emitted))}) agree across code, SARIF, and docs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
