"""Crash-only smoke test: SIGKILL a journaled server mid-sweep, restart it,
and the sweep must finish with **zero repeated evaluations**.

The acceptance scenario for ``--journal-dir`` + ``restart_grace``, as CI
runs it.  Two real ``repro serve`` subprocesses, both journaled; a watcher
thread SIGKILLs the victim once a few of its rows are durably journaled,
then restarts it **on the same port**.  The coordinator (``restart_grace``
set) must ride the outage: find the journal-rebuilt job, resume the
long-poll from its last folded ``seq``, and fold results bit-identical to
``LocalSession.sweep()`` — with the victim's journaled rows *adopted*, not
re-evaluated, so the fleet evaluates every design exactly once.  Finally
both servers get SIGINT and must exit 0 with the clean-shutdown banner.

Run:  PYTHONPATH=src python scripts/restart_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

WORKLOADS = ["gemm", "batched_gemv", "depthwise_conv"]


def main() -> int:
    sys.path.insert(0, str(SRC))
    sys.path.insert(0, str(REPO))  # for the shared fault-injection harness

    from repro.api import LocalSession
    from repro.perf.model import ArrayConfig
    from repro.service import SweepCoordinator
    from tests.service.faultlib import ServerProcess, journaled_rows, wait_for

    array = ArrayConfig(rows=8, cols=8)

    print(f"local reference sweep over {WORKLOADS} ...")
    local = LocalSession(array).sweep(WORKLOADS)
    local_evaluated = sum(r.stats.evaluated for r in local)
    print(f"local sweep: {local_evaluated} designs evaluated")

    with tempfile.TemporaryDirectory(prefix="repro-restart-smoke-") as tmp:
        victim = ServerProcess(journal_dir=Path(tmp) / "victim").start()
        survivor = ServerProcess(journal_dir=Path(tmp) / "survivor").start()
        print(f"servers up at {victim.url} (victim) and {survivor.url} (survivor)")

        events: list[dict] = []
        outage: dict[str, float] = {}

        def killer() -> None:
            # "mid-sweep" means rows durably on disk, not merely produced
            if not wait_for(lambda: journaled_rows(Path(tmp) / "victim") >= 4):
                return  # the assertions below will fail loudly
            victim.kill()
            outage["killed_at"] = time.monotonic()
            print(f"SIGKILLed {victim.url} mid-sweep "
                  f"({journaled_rows(Path(tmp) / 'victim')} rows journaled)")
            victim.restart()
            outage["back_at"] = time.monotonic()
            print(f"victim back on {victim.url} after "
                  f"{outage['back_at'] - outage['killed_at']:.1f}s")

        try:
            coordinator = SweepCoordinator(
                [victim.url, survivor.url],
                array=array,
                restart_grace=60.0,
                retries=1,
                backoff=0.05,
                on_event=lambda e: events.append(dict(e)),
            )
            watcher = threading.Thread(target=killer)
            watcher.start()
            results = coordinator.sweep(WORKLOADS)
            watcher.join(timeout=120)
            report = coordinator.last_report
            coordinator.close()
            print(f"coordinated sweep done: {report}")

            assert "killed_at" in outage, "victim never journaled 4 rows"
            assert "back_at" in outage, "victim never came back up"

            # resumed, not reassigned: the crashed shard was never forfeited
            kinds = [e["event"] for e in events]
            assert report["resumed"] >= 1, (report, kinds)
            assert report["reassigned"] == 0, report
            assert report["servers_lost"] == 0, report
            assert "job_resumed" in kinds, kinds

            # fold bit-identical to local ...
            assert [r.workload for r in results] == [r.workload for r in local]
            assert [[(p.name, p.metrics()) for p in r] for r in results] == [
                [(p.name, p.metrics()) for p in r] for r in local
            ], "resumed fold differs from LocalSession.sweep()"
            assert [len(r.failures) for r in results] == [
                len(r.failures) for r in local
            ]

            # ... with zero repeated evaluations: journaled rows were adopted,
            # the fleet evaluated exactly the remainder
            fleet_evaluated = sum(r.stats.evaluated for r in results)
            assert fleet_evaluated + report["rows_replayed"] == local_evaluated, (
                fleet_evaluated, report["rows_replayed"], local_evaluated
            )
            print(f"fold identical across {len(results)} results; "
                  f"{fleet_evaluated} evaluated + {report['rows_replayed']} "
                  f"replayed == {local_evaluated} (zero repeats)")
        finally:
            for name, server in (("victim", victim), ("survivor", survivor)):
                if server.alive():
                    tail = server.interrupt()
                    assert server.proc is not None
                    assert server.proc.returncode == 0, (
                        f"{name} exited {server.proc.returncode}: {tail}"
                    )
                    assert "shutdown complete" in tail, (
                        f"no clean-shutdown banner from {name}: {tail!r}"
                    )
                else:
                    server.stop()
        print("both servers clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
